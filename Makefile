# CI entry points. `make ci` is the gate: vet, build, the full test suite
# under the race detector, the campaign determinism check (a serial vs
# workers=4 Small-scale campaign must be byte-identical, the replay path
# must match the legacy dual-CPU oracle, and the pruned campaign must
# match the -no-prune one), the crash-safety check (kill/resume at any
# point must reproduce the byte-identical dataset), the pruning
# differential-oracle soundness gate, the telemetry concurrency tests
# under -race, the injection and predict hot-path allocation guards, the
# hot-table-reload swap-atomicity and training-parity gate, and the
# serving-path SLO smoke.
GO ?= go

.PHONY: ci vet build test race determinism resume-determinism distributed-determinism mode-determinism prune-soundness telemetry alloc server serve-smoke serve-bench serve-slo swap-determinism distributed-bench cover bench bench-quick fuzz

ci: vet build race determinism resume-determinism distributed-determinism mode-determinism prune-soundness telemetry alloc server serve-smoke swap-determinism serve-slo

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The campaign determinism contracts, explicitly and under -race: the
# sharded campaign must reproduce the serial dataset bit for bit, and the
# golden-trace replay path must reproduce the legacy dual-CPU oracle's
# outcomes bit for bit (per-experiment and as a whole campaign dataset).
determinism:
	$(GO) test -race -run 'TestWorkerCountInvariance|TestProgressMonotonic|TestConcurrentInjectMatchesSerial|TestReplayMatchesLegacyOracle|TestLegacyOracleDatasetIdentical|TestPrunedMatchesUnpruned|TestGoldenTraceSelfCheck' -count=1 \
		./internal/inject/ ./internal/lockstep/

# The crash-safety contracts, explicitly: resuming a campaign from any
# checkpoint prefix (in-process truncation) or after a SIGKILL of the real
# binary at a seeded random checkpoint boundary (subprocess) must
# reproduce the uninterrupted dataset byte for byte, and -resume must
# refuse corrupt checkpoints and config mismatches with a named field.
resume-determinism:
	$(GO) test -run 'TestResumeProducesIdenticalDataset|TestResumeConfigMismatch|TestResumeRefusesBadCheckpoint|TestPanicContainment' -count=1 ./internal/inject/
	$(GO) test -run 'TestKillResumeEquivalence|TestCLIResumeRefusals' -count=1 ./cmd/lockstep-inject/

# The distributed-campaign contracts, explicitly: a span-lease campaign
# must merge to the byte-identical single-machine dataset at any worker
# count and lease size (in-process coordinator, HTTP through
# lockstep-serve, and the standalone Distributor), survive lease
# expiry/re-issue and duplicate spans, resume a half-merged campaign
# from its checkpoint, and — against the real binaries — stay
# byte-identical after a worker is SIGKILLed mid-span.
distributed-determinism:
	$(GO) test -race -run 'TestDistributedMatchesRun|TestLeaseKernelAffinity|TestLeaseExpiryReissue|TestDrainWorkers|TestCommitRejections|TestCoordinatorResume|TestSpanRunnerMatchesRun|TestFingerprintConfigRoundTrip|TestWireRoundTrips|TestWireRejects' -count=1 ./internal/inject/
	$(GO) test -race -run 'TestDistributedCampaignMatchesDirect|TestDistributorMatchesDirect|TestDistributedEndpointErrors|TestDistributedRestartResume|TestSubmitForeignCheckpointRejected' -count=1 ./internal/server/
	$(GO) test -run 'TestDistributedKillWorkerEquivalence|TestDistributeJoinExclusive' -count=1 ./cmd/lockstep-inject/

# The lockstep-mode determinism gate: (a) a dcls campaign reproduces the
# pre-mode binary's dataset bytes (pinned SHA-256) at one worker and at
# all of them; (b) slip:0 equals dcls experiment for experiment; (c) the
# slip and tmr fast paths (and mode-aware pruning) match the legacy
# full-simulation oracles on a seeded >= 1% sample; (d) checkpoints,
# leases and resume refuse cross-mode mixing with a named field, and the
# whole axis round-trips over HTTP — submission, drain/resume,
# train-and-swap, mode-stamped manifests/bundles/datasets.
mode-determinism:
	$(GO) test -run 'TestDCLSDatasetPinnedDigest|TestSlipZeroCampaignEquivalence|TestSlipConfigErrors|TestCrossModeDistributedRefusal|TestModeCampaignsDiffer|TestResumeConfigMismatch' -count=1 ./internal/inject/
	$(GO) test -run 'TestParseModeRoundTrip|TestSlipZeroEquivalence|TestSlipMatchesLegacyOracle|TestTMRMatchesLegacyOracle|TestTMRDetectionEqualsDCLS|TestModePruneSoundness|TestSlipCheckerDelaysCompare' -count=1 ./internal/lockstep/
	$(GO) test -race -run 'TestCampaignModeErrors|TestCampaignModesRoundTrip|TestSlipCampaignDrainResume' -count=1 ./internal/server/

# The pruning soundness gate: every (kernel, fault kind) pair's pruned
# sites are differentially re-simulated on the replay oracle at a >= 1%
# sample (seeded, so the sample is reproducible) and every predicted
# outcome must match the simulation exactly. Run with the trace-codec
# round-trip checks so a compaction change cannot silently shift what
# the liveness analysis observes.
prune-soundness:
	$(GO) test -run 'TestPruneSoundness|TestPruneCoverageSubstantial|TestPruneSoftLastCycle|TestPruneRejectsOutOfRange|TestStreamClassification|TestTraceCodecRoundTrip' -count=1 ./internal/lockstep/

# The telemetry layer's own contract, under -race: exact totals from
# NumCPU hammering goroutines, monotone histogram buckets, and
# byte-deterministic snapshots.
telemetry:
	$(GO) test -race -count=1 ./internal/telemetry/

# The HTTP service's API contract, under -race: the structured error
# envelope on every failure path, /v1/predict equivalence with the
# offline handler, campaign job lifecycle with byte-identical datasets,
# and drain/restart resume.
server:
	$(GO) test -race -count=1 ./internal/server/

# End-to-end smoke of the real lockstep-serve binary via clitest: random
# port, campaign over HTTP byte-identical to a direct run, and
# SIGTERM-mid-job drain + checkpoint-resume across a restart.
serve-smoke:
	$(GO) test -race -count=1 ./cmd/lockstep-serve/

# The hot-table-reload contracts, explicitly and under -race: while a
# writer hot-swaps table versions in a loop, every /v1/predict response
# must be byte-identical to the render of exactly the table named by its
# ETag (torn-read freedom of the atomic bundle swap); a table trained
# server-side must be byte-identical to the offline lockstep-train
# pipeline on the same dataset; and a restart must adopt the
# last-activated version.
swap-determinism:
	$(GO) test -race -run 'TestSwapAtomicityUnderRace|TestTrainingParityWithOffline|TestTablesPersistenceAcrossRestart|TestCampaignTrainAndSwap' -count=1 ./internal/server/

# Coverage report with per-package floors: internal/telemetry is the
# observability backbone (>= 60%), internal/inject carries the campaign,
# checkpoint, containment and distributed-coordination machinery
# (>= 80%), internal/server is the HTTP boundary plus the
# distributed-campaign endpoints and worker client (>= 75%),
# internal/loadgen generates the benchmark load whose determinism the
# trajectory relies on (>= 70%), internal/lockstep carries the liveness
# pruning, trace compaction, replay and lockstep-mode machinery (>= 80%).
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -n 1
	@for spec in internal/telemetry:60 internal/inject:80 internal/server:75 internal/loadgen:70 internal/lockstep:80; do \
		pkg=$${spec%:*}; floor=$${spec#*:}; \
		pct=$$($(GO) test -cover ./$$pkg/ | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: could not measure $$pkg coverage"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN { print (p >= f) ? 1 : 0 }'); \
		if [ "$$ok" != "1" ]; then echo "cover: $$pkg $$pct% below the $$floor% floor"; exit 1; fi; \
		echo "cover: $$pkg $$pct% (floor $$floor%)"; \
	done

# Allocation regression guards for the two hot paths: steady-state
# Replayer.InjectW (injection) and predictBytes — decode, dense lookup,
# render — (serving) must perform zero heap allocations, and the full
# predict HTTP round trip must stay within its fixed stdlib-plumbing
# budget. Run without -race (the detector's instrumentation allocates;
# the tests skip themselves there).
alloc:
	$(GO) test -run 'TestInjectReplayZeroAlloc|TestTMRZeroAlloc' -count=1 ./internal/lockstep/
	$(GO) test -run 'TestPredictZeroAlloc' -count=1 ./internal/server/

bench:
	$(GO) test -bench=. -benchmem

# Quick perf check of the hot paths: golden-trace replay vs the legacy
# dual-CPU oracle vs the pruned campaign path on the same mix
# (BENCH_inject.json records the trajectory), and the predict decode +
# serve path over the fuzz seed corpus and production-shaped bodies
# (BENCH_serve.json).
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkInject(Replay|Legacy|Pruned)$$' -benchmem -benchtime=200ms .
	$(GO) test -run '^$$' -bench 'BenchmarkPredict(Decode|E2E)' -benchmem -benchtime=200ms ./internal/server/

# Serving-path load benchmark: lockstep-bench drives a deterministic
# loadgen schedule (hex/numeric + known/unknown DSR mix, pool seeded
# from the FuzzPredictRequest corpus) against an in-process
# lockstep-serve, and appends the median-of-3 p50/p95/p99, req/s and
# allocs/req to BENCH_serve.json. BENCH_PR labels the entry.
BENCH_PR ?= local
serve-bench:
	$(GO) run ./cmd/lockstep-bench -clients 8 -requests 500 -repeat 3 \
		-corpus internal/server/testdata/fuzz/FuzzPredictRequest \
		-append BENCH_serve.json -pr "$(BENCH_PR)"

# Serving-path SLO smoke for ci: at 8 concurrent clients the median p99
# must stay under 5ms and the steady-state predict path must not
# allocate. Fails the build (exit 1) when the floor is missed.
serve-slo:
	$(GO) run ./cmd/lockstep-bench -clients 8 -requests 200 -repeat 2 \
		-slo-p99 5ms -slo-allocs 0

# Distributed-campaign scaling benchmark: a coordinator plus 1/2/4
# time-sliced in-process workers on the reference 3-kernel campaign;
# appends measured and cluster-projected exp/s to BENCH_inject.json.
distributed-bench:
	LOCKSTEP_DIST_BENCH=1 $(GO) test -run TestDistributedScalingBench -count=1 -v -timeout 20m ./internal/server/

# Short fuzz passes over the campaign-log parser, the checkpoint decoder,
# the compacted golden-trace codec, the distributed-campaign wire codec
# (all four lease/span messages through one harness), and the three
# lockstep-serve request decoders (predict bodies through the full
# endpoint, campaign submissions and server-side training requests
# through their validation layers).
fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/dataset/
	$(GO) test -fuzz=FuzzReadCheckpoint -fuzztime=30s ./internal/inject/
	$(GO) test -fuzz=FuzzLeaseDecode -fuzztime=30s ./internal/inject/
	$(GO) test -fuzz=FuzzTraceDecode -fuzztime=30s ./internal/lockstep/
	$(GO) test -fuzz=FuzzModeParse -fuzztime=30s ./internal/lockstep/
	$(GO) test -fuzz=FuzzPredictRequest -fuzztime=30s ./internal/server/
	$(GO) test -fuzz=FuzzCampaignRequest -fuzztime=30s ./internal/server/
	$(GO) test -fuzz=FuzzTablesRequest -fuzztime=30s ./internal/server/
