# CI entry points. `make ci` is the gate: vet, build, the full test suite
# under the race detector, and the campaign determinism check (a serial vs
# workers=4 Small-scale campaign must be byte-identical).
GO ?= go

.PHONY: ci vet build test race determinism bench fuzz

ci: vet build race determinism

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The worker-count-invariance contract, explicitly and under -race: the
# sharded campaign must reproduce the serial dataset bit for bit.
determinism:
	$(GO) test -race -run 'TestWorkerCountInvariance|TestProgressMonotonic|TestConcurrentInjectMatchesSerial' -count=1 \
		./internal/inject/ ./internal/lockstep/

bench:
	$(GO) test -bench=. -benchmem

# Short fuzz pass over the campaign-log parser.
fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/dataset/
