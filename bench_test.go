// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus ablation and
// micro-benchmarks of the simulation substrate.
//
// Each experiment benchmark runs its analysis over a shared small-scale
// campaign (built once per process) and reports the headline reproduction
// metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. The campaign scale is intentionally
// small so the suite completes in minutes; use cmd/lockstep-experiments
// -scale default|full for the paper-scale reproduction.
package lockstep_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"lockstep/internal/core"
	"lockstep/internal/cpu"
	"lockstep/internal/experiments"
	"lockstep/internal/inject"
	"lockstep/internal/lockstep"
	"lockstep/internal/mem"
	"lockstep/internal/sbist"
	"lockstep/internal/workload"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchErr  error
)

func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() { benchCtx, benchErr = experiments.NewContext(experiments.Small, nil) })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

// ---- tables -----------------------------------------------------------------

// BenchmarkTable1ManifestationStats regenerates Table I.
func BenchmarkTable1ManifestationStats(b *testing.B) {
	c := benchContext(b)
	var t experiments.Table1
	for i := 0; i < b.N; i++ {
		t = c.Table1()
	}
	b.ReportMetric(100*t.SoftRate.Mean, "softrate%")
	b.ReportMetric(100*t.HardRate.Mean, "hardrate%")
	b.ReportMetric(t.SoftTime.Mean, "softcyc")
	b.ReportMetric(t.HardTime.Mean, "hardcyc")
	b.ReportMetric(float64(t.DistinctSets), "dsrsets")
}

// BenchmarkTable2Latencies regenerates Table II.
func BenchmarkTable2Latencies(b *testing.B) {
	c := benchContext(b)
	var t experiments.Table2
	for i := 0; i < b.N; i++ {
		t = c.Table2()
	}
	b.ReportMetric(t.STL.Mean, "stlmean")
	b.ReportMetric(t.Restart.Mean, "restartmean")
}

// BenchmarkTable3TypeAccuracy regenerates Table III (paper: soft 86%,
// hard 49%, overall 67%).
func BenchmarkTable3TypeAccuracy(b *testing.B) {
	c := benchContext(b)
	var t experiments.Table3
	for i := 0; i < b.N; i++ {
		t = c.Table3()
	}
	b.ReportMetric(100*t.Soft, "soft%")
	b.ReportMetric(100*t.Hard, "hard%")
	b.ReportMetric(100*t.Overall, "overall%")
}

// BenchmarkTable4AreaPower regenerates Table IV (paper: 0.6%/1.8% vs the
// dual-CPU lockstep).
func BenchmarkTable4AreaPower(b *testing.B) {
	c := benchContext(b)
	t := c.Table4()
	for i := 0; i < b.N; i++ {
		t = c.Table4()
	}
	b.ReportMetric(100*t.VsSR5DMR.Area, "area-vs-sr5dmr%")
	b.ReportMetric(100*t.VsSR5DMR.Power, "power-vs-sr5dmr%")
	b.ReportMetric(100*t.VsR5DMR.Area, "area-vs-r5dmr%")
	b.ReportMetric(100*t.VsR5DMR.Power, "power-vs-r5dmr%")
}

// ---- figures ----------------------------------------------------------------

// BenchmarkFig4HardErrorBC regenerates Figure 4 (paper: average BC ~0.39).
func BenchmarkFig4HardErrorBC(b *testing.B) {
	c := benchContext(b)
	var f experiments.FigBC
	for i := 0; i < b.N; i++ {
		f = c.FigUnitBC(true)
	}
	b.ReportMetric(f.AvgBC, "avgBC")
	b.ReportMetric(float64(f.SetSizes), "sets")
}

// BenchmarkFig5SoftErrorBC regenerates Figure 5 (paper: average BC ~0.32).
func BenchmarkFig5SoftErrorBC(b *testing.B) {
	c := benchContext(b)
	var f experiments.FigBC
	for i := 0; i < b.N; i++ {
		f = c.FigUnitBC(false)
	}
	b.ReportMetric(f.AvgBC, "avgBC")
	b.ReportMetric(float64(f.SetSizes), "sets")
}

// BenchmarkFig11ModelComparison7 regenerates Figure 11 (paper: pred-comb
// 65%/64%/39% faster than base-manifest/base-ascending/pred-location-only).
func BenchmarkFig11ModelComparison7(b *testing.B) {
	c := benchContext(b)
	var mc experiments.ModelComparison
	for i := 0; i < b.N; i++ {
		mc = c.Compare(core.Coarse7, sbist.OnChipTableAccess)
	}
	b.ReportMetric(mc.Rows[4].MeanLERT, "comb-lert")
	b.ReportMetric(mc.Rows[4].MeanUnits, "comb-units")
	b.ReportMetric(100*mc.CombVsManifest, "comb-vs-manifest%")
	b.ReportMetric(100*mc.CombVsAscending, "comb-vs-ascending%")
	b.ReportMetric(100*mc.CombVsLocation, "comb-vs-location%")
}

// BenchmarkOnOffChipTable regenerates the Section V-B analysis (paper:
// 0.05% overhead for the off-chip table).
func BenchmarkOnOffChipTable(b *testing.B) {
	c := benchContext(b)
	var o experiments.OnOffChip
	for i := 0; i < b.N; i++ {
		o = c.OnOffChipAnalysis()
	}
	b.ReportMetric(100*(o.CombOff/o.CombOn-1), "comb-offchip-ovh%")
	b.ReportMetric(100*(o.LocOff/o.LocOn-1), "loc-offchip-ovh%")
}

// BenchmarkFig12TopKAccuracy7 regenerates Figure 12 (paper: 70%/85%/95%
// at K=1/2/3).
func BenchmarkFig12TopKAccuracy7(b *testing.B) {
	c := benchContext(b)
	var sw experiments.TopKSweep
	for i := 0; i < b.N; i++ {
		sw = c.SweepTopK(core.Coarse7)
	}
	b.ReportMetric(100*sw.Accuracy[0], "acc-k1%")
	b.ReportMetric(100*sw.Accuracy[1], "acc-k2%")
	b.ReportMetric(100*sw.Accuracy[2], "acc-k3%")
}

// BenchmarkFig13TopKLERT7 regenerates Figure 13 (paper: sweet spot at 3-4
// units with 60-63% speedup vs base-ascending).
func BenchmarkFig13TopKLERT7(b *testing.B) {
	c := benchContext(b)
	var sw experiments.TopKSweep
	for i := 0; i < b.N; i++ {
		sw = c.SweepTopK(core.Coarse7)
	}
	b.ReportMetric(100*sw.Speedup[2], "speedup-k3%")
	b.ReportMetric(100*sw.Speedup[3], "speedup-k4%")
	b.ReportMetric(sw.LERT[3], "lert-k4")
}

// BenchmarkFig14ModelComparison13 regenerates Figure 14 (paper: pred-comb
// 64%/42%/34% at 13 units).
func BenchmarkFig14ModelComparison13(b *testing.B) {
	c := benchContext(b)
	var mc experiments.ModelComparison
	for i := 0; i < b.N; i++ {
		mc = c.Compare(core.Fine13, sbist.OnChipTableAccess)
	}
	b.ReportMetric(mc.Rows[4].MeanLERT, "comb-lert")
	b.ReportMetric(100*mc.CombVsManifest, "comb-vs-manifest%")
	b.ReportMetric(100*mc.CombVsAscending, "comb-vs-ascending%")
	b.ReportMetric(100*mc.CombVsLocation, "comb-vs-location%")
}

// BenchmarkFig15TopKAccuracy13 regenerates Figure 15 (paper: 42% at K=1,
// ~95% by K=7).
func BenchmarkFig15TopKAccuracy13(b *testing.B) {
	c := benchContext(b)
	var sw experiments.TopKSweep
	for i := 0; i < b.N; i++ {
		sw = c.SweepTopK(core.Fine13)
	}
	b.ReportMetric(100*sw.Accuracy[0], "acc-k1%")
	b.ReportMetric(100*sw.Accuracy[6], "acc-k7%")
}

// BenchmarkFig16TopKLERT13 regenerates Figure 16 (paper: sweet spot at 7-8
// units with 36-39% speedup).
func BenchmarkFig16TopKLERT13(b *testing.B) {
	c := benchContext(b)
	var sw experiments.TopKSweep
	for i := 0; i < b.N; i++ {
		sw = c.SweepTopK(core.Fine13)
	}
	b.ReportMetric(100*sw.Speedup[6], "speedup-k7%")
	b.ReportMetric(100*sw.Speedup[7], "speedup-k8%")
}

// BenchmarkHardSoftSpread regenerates the Section III-B statistic (paper:
// hard faults produce 54% more distinct diverged SC sets).
func BenchmarkHardSoftSpread(b *testing.B) {
	c := benchContext(b)
	var sp experiments.Spread
	for i := 0; i < b.N; i++ {
		sp = c.SpreadAnalysis()
	}
	b.ReportMetric(100*sp.MorePct, "hard-more-sets%")
	b.ReportMetric(sp.HardAvgSCs, "hard-avg-scs")
	b.ReportMetric(sp.SoftAvgSCs, "soft-avg-scs")
}

// BenchmarkLBISTComparison evaluates the five reaction models with LBIST
// scan-session latencies instead of STLs (Section III notes the predictor
// serves both BIST styles).
func BenchmarkLBISTComparison(b *testing.B) {
	c := benchContext(b)
	var mc experiments.ModelComparison
	for i := 0; i < b.N; i++ {
		mc = c.CompareLBIST(core.Coarse7, sbist.OffChipTableAccess)
	}
	b.ReportMetric(mc.Rows[4].MeanLERT, "comb-lert")
	b.ReportMetric(100*mc.CombVsAscending, "comb-vs-ascending%")
}

// ---- ablations ---------------------------------------------------------------

// BenchmarkAblationDynamicPredictor compares the static table against the
// Section VII dynamic predictor (the paper argues static suffices because
// errors are rare).
func BenchmarkAblationDynamicPredictor(b *testing.B) {
	c := benchContext(b)
	var a experiments.Ablation
	for i := 0; i < b.N; i++ {
		a = c.AblationDynamic()
	}
	b.ReportMetric(a.StaticLERT, "static-lert")
	b.ReportMetric(a.DynamicLERT, "dynamic-lert")
}

// ---- substrate micro-benchmarks ----------------------------------------------

// BenchmarkCPUSimulation measures the cycle-accurate simulator's
// throughput (cycles simulated per second drive campaign cost).
func BenchmarkCPUSimulation(b *testing.B) {
	k := workload.ByName("ttsprk")
	sys, entry, err := k.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	c := cpu.New(sys, entry)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.StepCycle()
	}
}

// BenchmarkLockstepPair measures a full lockstep step: two CPUs plus the
// checker comparison.
func BenchmarkLockstepPair(b *testing.B) {
	k := workload.ByName("ttsprk")
	sys, entry, err := k.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	main := cpu.New(sys, entry)
	red := cpu.New(mem.Monitor{Sys: sys}, entry)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		main.StepCycle()
		red.StepCycle()
		om := main.State.Outputs()
		or := red.State.Outputs()
		if cpu.Diverge(&om, &or) != 0 {
			b.Fatal("spurious divergence")
		}
	}
}

// injectionBenchSetup builds the shared golden run and a fixed mixed
// injection schedule (all three fault kinds, random flops and cycles), so
// the replay and legacy benchmarks measure the exact same experiments.
func injectionBenchSetup(b *testing.B) (*lockstep.Golden, []lockstep.Injection) {
	b.Helper()
	k := workload.ByName("puwmod")
	g, err := lockstep.NewGolden(k, 6000, 750)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	mix := make([]lockstep.Injection, 512)
	for i := range mix {
		mix[i] = lockstep.Injection{
			Flop:  rng.Intn(cpu.NumFlops()),
			Kind:  lockstep.FaultKind(i % lockstep.NumFaultKinds),
			Cycle: 500 + rng.Intn(5000),
		}
	}
	return g, mix
}

// BenchmarkInjectReplay measures one fault-injection experiment on the
// golden-trace replay path (one CPU stepped per cycle, per-worker scratch
// reuse) — the campaign hot path.
func BenchmarkInjectReplay(b *testing.B) {
	g, mix := injectionBenchSetup(b)
	rep := lockstep.NewReplayer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.InjectW(g, mix[i%len(mix)], lockstep.StopLatency)
	}
}

// BenchmarkInjectLegacy measures the same injection mix on the legacy
// dual-CPU oracle (main + redundant CPU re-simulated, full RAM restore
// per experiment).
func BenchmarkInjectLegacy(b *testing.B) {
	g, mix := injectionBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.InjectLegacyW(mix[i%len(mix)], lockstep.StopLatency)
	}
}

// BenchmarkInjectPruned measures the same injection mix with the static
// fault-equivalence prune consulted first — the campaign's actual
// per-experiment path with pruning enabled: sites the golden run's
// liveness analysis proves masked are recorded in O(1) without
// simulation, the rest fall through to the replayer. The speedup over
// BenchmarkInjectReplay is the prune hit rate times the per-experiment
// replay cost.
func BenchmarkInjectPruned(b *testing.B) {
	g, mix := injectionBenchSetup(b)
	rep := lockstep.NewReplayer()
	pruned := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj := mix[i%len(mix)]
		if _, ok := g.Prune(inj); ok {
			pruned++
			continue
		}
		rep.InjectW(g, inj, lockstep.StopLatency)
	}
	b.ReportMetric(100*float64(pruned)/float64(b.N), "%pruned")
}

// BenchmarkCampaign measures end-to-end campaign throughput (experiments
// per second) at several worker-pool sizes. The dataset is worker-count-
// invariant, so the sub-benchmarks are directly comparable: on a multicore
// host workers=4 should deliver several times the workers=1 throughput
// (the Default-scale campaign shards the same way, just with more
// experiments per shard).
func BenchmarkCampaign(b *testing.B) {
	pools := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		pools = append(pools, n)
	}
	for _, workers := range pools {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var st inject.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = inject.RunStats(inject.Config{
					Kernels:               []string{"puwmod", "rspeed"},
					RunCycles:             4000,
					Intervals:             64,
					InjectionsPerFlopKind: 1,
					FlopStride:            16,
					Seed:                  int64(i),
					Workers:               workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(st.PerSec, "exp/s")
		})
	}
}

// BenchmarkPredictorLookup measures the prediction table query path (DSR
// to ordered units), which the error handler executes at reaction time.
func BenchmarkPredictorLookup(b *testing.B) {
	c := benchContext(b)
	table := core.Train(c.DS, core.Coarse7, 0)
	man := c.DS.Manifested()
	if man.Len() == 0 {
		b.Fatal("no errors")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Predict(man.Records[i%man.Len()].DSR)
	}
}

// BenchmarkCheckerCompare measures the checker's per-cycle comparison.
func BenchmarkCheckerCompare(b *testing.B) {
	var s cpu.State
	s.Reset(0)
	a := s.Outputs()
	c := s.Outputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cpu.Diverge(&a, &c) != 0 {
			b.Fatal("diverged")
		}
	}
}

// BenchmarkAblationStopWindow quantifies the checker stop-latency ablation
// (DESIGN.md modelling decision 5): DSR accumulation window vs the
// diverged-SC-set vocabulary and type-prediction accuracy.
func BenchmarkAblationStopWindow(b *testing.B) {
	c := benchContext(b)
	var sw experiments.WindowSweep
	for i := 0; i < b.N; i++ {
		var err error
		sw, err = c.SweepStopWindow([]int{1, 12})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sw.DistinctSets[0]), "sets-w1")
	b.ReportMetric(float64(sw.DistinctSets[1]), "sets-w12")
	b.ReportMetric(100*sw.OverallAcc[1], "type-acc-w12%")
}
