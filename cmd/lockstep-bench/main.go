// Command lockstep-bench load-tests the lockstep-serve prediction path
// and records the trajectory in BENCH_serve.json.
//
// Usage:
//
//	lockstep-bench [-addr URL] [-table table.lspt] [-corpus dir]
//	               [-clients N] [-requests N] [-batch N]
//	               [-hex-prob P] [-known-prob P] [-seed S]
//	               [-repeat N] [-warmup N] [-subprocess]
//	               [-append BENCH_serve.json] [-pr label] [-json]
//	               [-slo-p99 D] [-slo-allocs N]
//
// The controller issues a deterministic load shape (internal/loadgen
// Control: concurrency, batch size, hex/numeric encoding mix,
// known/unknown DSR mix, seed) against a real lockstep-serve instance —
// either one reached via -addr, or an in-process server built from
// -table (or, with no -table, from a small built-in training campaign).
// Clients run in-process by default; -subprocess re-executes this
// binary once per client so request issue crosses a process boundary
// too.
//
// Each repeat aggregates per-request walltimes into nearest-rank
// p50/p95/p99 and req/s; the median repeat (by p99) is reported.
// In-process runs also measure steady-state allocations per predict
// request via the server's own probe. -append records a dated entry in
// BENCH_serve.json (same shape discipline as BENCH_inject.json);
// -slo-p99/-slo-allocs turn the run into a CI smoke that exits 1 when
// the service-level floor is missed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"lockstep/internal/core"
	"lockstep/internal/inject"
	"lockstep/internal/loadgen"
	"lockstep/internal/sbist"
	"lockstep/internal/server"
	"lockstep/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lockstep-bench:", err)
		os.Exit(1)
	}
}

// cliFlags is everything run parses; kept in a struct so the controller
// can re-render the relevant subset when spawning subprocess clients.
type cliFlags struct {
	addr      string
	tablePath string
	corpus    string
	clients   int
	requests  int
	batch     int
	hexProb   float64
	knownProb float64
	seed      int64
	repeat    int
	warmup    int
	subproc   bool
	appendTo  string
	pr        string
	jsonOut   bool
	sloP99    time.Duration
	sloAllocs float64

	clientIdx int    // internal: subprocess client mode
	controlJS string // internal: Control for subprocess client mode
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lockstep-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var f cliFlags
	fs.StringVar(&f.addr, "addr", "", "base URL of a running lockstep-serve (empty: serve in-process)")
	fs.StringVar(&f.tablePath, "table", "", "trained table image for the in-process server (empty: train a small built-in campaign)")
	fs.StringVar(&f.corpus, "corpus", "", "FuzzPredictRequest seed-corpus dir; harvested DSR values join the unknown draw pool")
	fs.IntVar(&f.clients, "clients", 8, "concurrent clients")
	fs.IntVar(&f.requests, "requests", 200, "requests per client per repeat")
	fs.IntVar(&f.batch, "batch", 1, "DSRs per request (1 sends {\"dsr\":...})")
	fs.Float64Var(&f.hexProb, "hex-prob", 0.5, "probability a DSR is rendered as a hex string")
	fs.Float64Var(&f.knownProb, "known-prob", 0.5, "probability a DSR is drawn from the trained population")
	fs.Int64Var(&f.seed, "seed", 1, "load-shape seed (same seed: byte-identical request schedule)")
	fs.IntVar(&f.repeat, "repeat", 3, "independent repeats; the median by p99 is reported")
	fs.IntVar(&f.warmup, "warmup", 50, "warmup requests before the first repeat (connection setup, pools)")
	fs.BoolVar(&f.subproc, "subprocess", false, "run each client as a subprocess of this binary")
	fs.StringVar(&f.appendTo, "append", "", "append a dated entry to this BENCH_serve.json")
	fs.StringVar(&f.pr, "pr", "", "entry label for -append")
	fs.BoolVar(&f.jsonOut, "json", false, "print the report as JSON on stdout")
	fs.DurationVar(&f.sloP99, "slo-p99", 0, "fail (exit 1) when the median p99 exceeds this")
	fs.Float64Var(&f.sloAllocs, "slo-allocs", -1, "fail (exit 1) when allocs/request exceeds this (in-process only; -1 disables)")
	fs.IntVar(&f.clientIdx, "client", -1, "internal: run as subprocess client with this index")
	fs.StringVar(&f.controlJS, "control", "", "internal: loadgen Control JSON for -client mode")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if f.clientIdx >= 0 {
		return runSubprocessClient(f, stdout)
	}
	return runController(f, stdout, stderr)
}

// runSubprocessClient is the -client mode: play one client schedule
// against -addr and hand the raw ClientReport back over stdout.
func runSubprocessClient(f cliFlags, stdout io.Writer) error {
	var ctrl loadgen.Control
	if err := json.Unmarshal([]byte(f.controlJS), &ctrl); err != nil {
		return fmt.Errorf("parsing -control: %w", err)
	}
	if f.addr == "" {
		return errors.New("-client requires -addr")
	}
	hc := ctrl.NewClient()
	defer hc.CloseIdleConnections()
	rep, err := loadgen.RunClient(context.Background(), ctrl, f.clientIdx, f.addr, hc)
	if err != nil {
		return err
	}
	return json.NewEncoder(stdout).Encode(rep)
}

// report is the full benchmark outcome: the load shape, the median
// repeat, every repeat's summary, and the in-process allocation probe.
type report struct {
	Control     loadgen.Control   `json:"control"`
	Median      loadgen.Summary   `json:"median"`
	Repeats     []loadgen.Summary `json:"repeats"`
	AllocsPerRq float64           `json:"allocs_per_req"` // -1 when not measurable (-addr mode)
}

func runController(f cliFlags, stdout, stderr io.Writer) error {
	if f.repeat < 1 {
		f.repeat = 1
	}
	ctrl := loadgen.Control{
		Clients:   f.clients,
		Requests:  f.requests,
		Batch:     f.batch,
		HexProb:   f.hexProb,
		KnownProb: f.knownProb,
		Seed:      f.seed,
	}
	if f.corpus != "" {
		pool, err := loadgen.CorpusDSRs(f.corpus)
		if err != nil {
			return err
		}
		ctrl.Pool = pool
		fmt.Fprintf(stderr, "lockstep-bench: %d corpus DSR values in the draw pool\n", len(pool))
	}

	baseURL := f.addr
	allocs := -1.0
	if baseURL == "" {
		srv, table, err := inProcessServer(f, stderr)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		baseURL = "http://" + ln.Addr().String()
		for id := 0; id < table.Dict.Len(); id++ {
			ctrl.Known = append(ctrl.Known, table.Dict.Set(id))
		}
		probe := []byte(fmt.Sprintf(`{"dsr":"%x"}`, table.Dict.Set(0)))
		if allocs, err = srv.PredictAllocsPerRun(probe); err != nil {
			return fmt.Errorf("allocation probe: %w", err)
		}
		fmt.Fprintf(stderr, "lockstep-bench: in-process server on %s (%d trained sets, %.1f allocs/req)\n",
			baseURL, table.Dict.Len(), allocs)
	} else if f.sloAllocs >= 0 {
		return errors.New("-slo-allocs needs the in-process server (drop -addr)")
	}

	if f.warmup > 0 {
		warm := ctrl
		warm.Clients = min(ctrl.Clients, 4)
		warm.Requests = (f.warmup + warm.Clients - 1) / warm.Clients
		if _, _, err := loadgen.Run(context.Background(), warm, baseURL); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}

	rep := report{Control: ctrl, AllocsPerRq: allocs}
	for i := 0; i < f.repeat; i++ {
		run := ctrl
		run.Seed = ctrl.Seed + int64(i) // repeats sample independent schedules
		var sum loadgen.Summary
		var err error
		if f.subproc {
			sum, err = runSubprocessRepeat(run, baseURL)
		} else {
			sum, _, err = loadgen.Run(context.Background(), run, baseURL)
		}
		if err != nil {
			return fmt.Errorf("repeat %d: %w", i, err)
		}
		if sum.Failures > 0 {
			return fmt.Errorf("repeat %d: %d of %d requests failed", i, sum.Failures, sum.Requests)
		}
		rep.Repeats = append(rep.Repeats, sum)
		fmt.Fprintf(stderr, "lockstep-bench: repeat %d: %d req, %.0f req/s, p50 %s p95 %s p99 %s\n",
			i, sum.Requests, sum.ReqPerSec, ms(sum.P50NS), ms(sum.P95NS), ms(sum.P99NS))
	}
	med := append([]loadgen.Summary(nil), rep.Repeats...)
	sort.Slice(med, func(i, j int) bool { return med[i].P99NS < med[j].P99NS })
	rep.Median = med[len(med)/2]
	fmt.Fprintf(stderr, "lockstep-bench: median: %.0f req/s, p50 %s p95 %s p99 %s\n",
		rep.Median.ReqPerSec, ms(rep.Median.P50NS), ms(rep.Median.P95NS), ms(rep.Median.P99NS))

	if f.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	}
	if f.appendTo != "" {
		if err := appendBenchEntry(f.appendTo, f.pr, rep); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "lockstep-bench: appended entry to %s\n", f.appendTo)
	}

	// SLO smoke: turn a missed floor into a non-zero exit for make ci.
	if f.sloP99 > 0 && rep.Median.P99NS > f.sloP99.Nanoseconds() {
		return fmt.Errorf("SLO: median p99 %s exceeds the %s floor", ms(rep.Median.P99NS), f.sloP99)
	}
	if f.sloAllocs >= 0 && allocs > f.sloAllocs {
		return fmt.Errorf("SLO: %.2f allocs/request exceeds the %.2f budget", allocs, f.sloAllocs)
	}
	return nil
}

// inProcessServer builds the server under test: from -table if given,
// else from a small built-in training campaign (the same schedule the
// server test fixture trains on).
func inProcessServer(f cliFlags, stderr io.Writer) (*server.Server, *core.Table, error) {
	var table *core.Table
	if f.tablePath != "" {
		fh, err := os.Open(f.tablePath)
		if err != nil {
			return nil, nil, err
		}
		table, err = core.ReadTable(fh)
		fh.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("reading table %s: %w", f.tablePath, err)
		}
	} else {
		fmt.Fprintln(stderr, "lockstep-bench: no -table; training a built-in campaign (ttsprk, 3000 cycles)")
		ds, err := inject.Run(inject.Config{
			Kernels:               []string{"ttsprk"},
			RunCycles:             3000,
			Intervals:             64,
			InjectionsPerFlopKind: 1,
			FlopStride:            24,
			Seed:                  9,
		})
		if err != nil {
			return nil, nil, err
		}
		table = core.Train(ds, core.Coarse7, 0)
	}
	maxBatch := 1024
	if f.batch > maxBatch {
		maxBatch = f.batch
	}
	srv, err := server.New(server.Options{
		Table:    table,
		SBIST:    sbist.NewConfig(table.Gran, nil, sbist.OnChipTableAccess),
		MaxBatch: maxBatch,
		Registry: telemetry.New(),
	})
	if err != nil {
		return nil, nil, err
	}
	return srv, table, nil
}

// runSubprocessRepeat re-executes this binary once per client (-client
// mode) so the load crosses a real process boundary, then aggregates
// the returned ClientReports.
func runSubprocessRepeat(ctrl loadgen.Control, baseURL string) (loadgen.Summary, error) {
	exe, err := os.Executable()
	if err != nil {
		return loadgen.Summary{}, err
	}
	ctrlJSON, err := json.Marshal(ctrl)
	if err != nil {
		return loadgen.Summary{}, err
	}
	cmds := make([]*exec.Cmd, ctrl.Clients)
	outs := make([]strings.Builder, ctrl.Clients)
	start := time.Now()
	for i := range cmds {
		cmds[i] = exec.Command(exe,
			"-client", fmt.Sprint(i), "-addr", baseURL, "-control", string(ctrlJSON))
		cmds[i].Stdout = &outs[i]
		cmds[i].Stderr = os.Stderr
		if err := cmds[i].Start(); err != nil {
			return loadgen.Summary{}, fmt.Errorf("starting client %d: %w", i, err)
		}
	}
	reports := make([]loadgen.ClientReport, 0, ctrl.Clients)
	var firstErr error
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("client %d: %w", i, err)
			continue
		}
		var r loadgen.ClientReport
		if err := json.Unmarshal([]byte(outs[i].String()), &r); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("client %d report: %w", i, err)
			continue
		}
		reports = append(reports, r)
	}
	if firstErr != nil {
		return loadgen.Summary{}, firstErr
	}
	return loadgen.Aggregate(reports, time.Since(start)), nil
}

// ---- BENCH_serve.json ---------------------------------------------------

type benchFile struct {
	Description string       `json:"description"`
	Host        benchHost    `json:"host"`
	Entries     []benchEntry `json:"entries"`
}

type benchHost struct {
	CPU    string `json:"cpu"`
	CPUs   int    `json:"cpus"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
}

type benchEntry struct {
	Date    string       `json:"date"`
	PR      string       `json:"pr,omitempty"`
	Load    benchLoad    `json:"load"`
	Serving benchServing `json:"serving"`
}

type benchLoad struct {
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	Batch     int     `json:"batch"`
	HexProb   float64 `json:"hex_prob"`
	KnownProb float64 `json:"known_prob"`
	Seed      int64   `json:"seed"`
	Repeats   int     `json:"repeats"`
}

type benchServing struct {
	ReqPerSec   float64 `json:"req_per_sec"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	AllocsPerRq float64 `json:"allocs_per_req"`
}

const benchDescription = "Serving-path load trajectory. Entries are `make serve-bench` " +
	"(lockstep-bench against an in-process lockstep-serve: built-in ttsprk training campaign, " +
	"deterministic loadgen schedule, nearest-rank percentiles over per-request walltimes, " +
	"median repeat by p99; allocs/req from the server's steady-state predict probe)."

// appendBenchEntry appends one dated entry to path, creating the file —
// description, host block and all — on first use, mirroring
// BENCH_inject.json.
func appendBenchEntry(path, pr string, rep report) error {
	bf := benchFile{
		Description: benchDescription,
		Host: benchHost{
			CPU:    cpuModel(),
			CPUs:   runtime.NumCPU(),
			GOOS:   runtime.GOOS,
			GOARCH: runtime.GOARCH,
		},
	}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &bf); err != nil {
			return fmt.Errorf("existing %s is not a bench file: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	bf.Entries = append(bf.Entries, benchEntry{
		Date: time.Now().Format("2006-01-02"),
		PR:   pr,
		Load: benchLoad{
			Clients:   rep.Control.Clients,
			Requests:  rep.Control.Requests,
			Batch:     rep.Control.Batch,
			HexProb:   rep.Control.HexProb,
			KnownProb: rep.Control.KnownProb,
			Seed:      rep.Control.Seed,
			Repeats:   len(rep.Repeats),
		},
		Serving: benchServing{
			ReqPerSec:   round2(rep.Median.ReqPerSec),
			P50MS:       round3(float64(rep.Median.P50NS) / 1e6),
			P95MS:       round3(float64(rep.Median.P95NS) / 1e6),
			P99MS:       round3(float64(rep.Median.P99NS) / 1e6),
			AllocsPerRq: rep.AllocsPerRq,
		},
	})
	out, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// cpuModel best-efforts the CPU model name for the host block.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

func ms(ns int64) string { return fmt.Sprintf("%.3fms", float64(ns)/1e6) }

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }
