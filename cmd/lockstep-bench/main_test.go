package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lockstep/internal/clitest"
)

func init()                 { clitest.Register(main) }
func TestMain(m *testing.M) { clitest.Dispatch(m) }

// benchArgs is the small, fast load every smoke test runs: in-process
// server trained from the built-in campaign, 2 clients, 20 requests.
func benchArgs(extra ...string) []string {
	return append([]string{
		"-clients", "2", "-requests", "20", "-batch", "2",
		"-repeat", "2", "-warmup", "4", "-seed", "11",
	}, extra...)
}

// parseReport decodes the -json stdout of a bench run.
func parseReport(t *testing.T, stdout string) report {
	t.Helper()
	var rep report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("parsing report %q: %v", stdout, err)
	}
	return rep
}

// TestBenchInProcess runs the full controller against the in-process
// server: every request must succeed, the allocation probe must read
// zero, and the report's percentiles must be ordered.
func TestBenchInProcess(t *testing.T) {
	res := clitest.Exec(t, benchArgs("-json")...)
	if res.Code != 0 {
		t.Fatalf("exit %d:\n%s%s", res.Code, res.Stdout, res.Stderr)
	}
	rep := parseReport(t, res.Stdout)
	if rep.Median.Requests != 40 || rep.Median.Failures != 0 {
		t.Fatalf("median %+v: want 40 requests, 0 failures", rep.Median)
	}
	if len(rep.Repeats) != 2 {
		t.Fatalf("%d repeats, want 2", len(rep.Repeats))
	}
	if rep.AllocsPerRq != 0 {
		t.Fatalf("allocs/req = %v, want 0", rep.AllocsPerRq)
	}
	if rep.Median.P50NS <= 0 || rep.Median.P50NS > rep.Median.P99NS {
		t.Fatalf("median %+v: percentiles out of order", rep.Median)
	}
	if len(rep.Control.Known) == 0 {
		t.Fatal("controller did not seed the trained population")
	}
}

// TestBenchSubprocessClients: -subprocess must produce the same request
// accounting with real process-boundary clients (each client re-executes
// this binary in -client mode).
func TestBenchSubprocessClients(t *testing.T) {
	res := clitest.Exec(t, benchArgs("-json", "-subprocess", "-repeat", "1")...)
	if res.Code != 0 {
		t.Fatalf("exit %d:\n%s%s", res.Code, res.Stdout, res.Stderr)
	}
	rep := parseReport(t, res.Stdout)
	if rep.Median.Requests != 40 || rep.Median.Failures != 0 {
		t.Fatalf("median %+v: want 40 requests, 0 failures", rep.Median)
	}
}

// TestBenchAppend: -append must create BENCH_serve.json with the
// description/host/entries shape on first use and append on the second.
func TestBenchAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	for i := 1; i <= 2; i++ {
		res := clitest.Exec(t, benchArgs("-append", path, "-pr", "smoke")...)
		if res.Code != 0 {
			t.Fatalf("run %d: exit %d:\n%s%s", i, res.Code, res.Stdout, res.Stderr)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var bf benchFile
		if err := json.Unmarshal(raw, &bf); err != nil {
			t.Fatalf("run %d: %v in\n%s", i, err, raw)
		}
		if len(bf.Entries) != i {
			t.Fatalf("run %d: %d entries", i, len(bf.Entries))
		}
		e := bf.Entries[i-1]
		if bf.Description == "" || bf.Host.CPUs < 1 || e.Date == "" || e.PR != "smoke" {
			t.Fatalf("run %d: incomplete entry %+v (host %+v)", i, e, bf.Host)
		}
		if e.Serving.ReqPerSec <= 0 || e.Serving.P99MS < e.Serving.P50MS || e.Serving.AllocsPerRq != 0 {
			t.Fatalf("run %d: implausible serving block %+v", i, e.Serving)
		}
		if e.Load.Clients != 2 || e.Load.Requests != 20 || e.Load.Batch != 2 || e.Load.Repeats != 2 {
			t.Fatalf("run %d: load block %+v does not echo the flags", i, e.Load)
		}
	}
}

// TestBenchCorpusPool: -corpus harvests the real fuzz seed corpus into
// the draw pool.
func TestBenchCorpusPool(t *testing.T) {
	corpus := filepath.Join("..", "..", "internal", "server", "testdata", "fuzz", "FuzzPredictRequest")
	res := clitest.Exec(t, benchArgs("-json", "-repeat", "1", "-corpus", corpus)...)
	if res.Code != 0 {
		t.Fatalf("exit %d:\n%s%s", res.Code, res.Stdout, res.Stderr)
	}
	rep := parseReport(t, res.Stdout)
	if len(rep.Control.Pool) == 0 {
		t.Fatal("corpus pool not seeded")
	}
	if !strings.Contains(res.Stderr, "corpus DSR values in the draw pool") {
		t.Fatalf("missing corpus note in stderr:\n%s", res.Stderr)
	}
}

// TestBenchSLO: an unmeetable p99 floor must exit 1 with an SLO error;
// a generous one must pass. The alloc budget SLO passes at 0 thanks to
// the zero-alloc predict path.
func TestBenchSLO(t *testing.T) {
	res := clitest.Exec(t, benchArgs("-slo-p99", "1ns")...)
	if res.Code != 1 || !strings.Contains(res.Stderr, "SLO: median p99") {
		t.Fatalf("exit %d, stderr:\n%s", res.Code, res.Stderr)
	}
	res = clitest.Exec(t, benchArgs("-repeat", "1", "-slo-p99", "1m", "-slo-allocs", "0")...)
	if res.Code != 0 {
		t.Fatalf("generous SLO failed: exit %d:\n%s", res.Code, res.Stderr)
	}
}

// TestBenchFlagErrors: unusable flag combinations fail fast.
func TestBenchFlagErrors(t *testing.T) {
	res := clitest.Exec(t, "-addr", "http://127.0.0.1:1", "-slo-allocs", "0")
	if res.Code != 1 || !strings.Contains(res.Stderr, "-slo-allocs needs the in-process server") {
		t.Fatalf("exit %d, stderr:\n%s", res.Code, res.Stderr)
	}
	res = clitest.Exec(t, "-client", "0", "-control", "{}")
	if res.Code != 1 || !strings.Contains(res.Stderr, "-client requires -addr") {
		t.Fatalf("exit %d, stderr:\n%s", res.Code, res.Stderr)
	}
	res = clitest.Exec(t, "-table", filepath.Join(t.TempDir(), "missing.lspt"))
	if res.Code != 1 {
		t.Fatalf("missing table: exit %d:\n%s", res.Code, res.Stderr)
	}
}
