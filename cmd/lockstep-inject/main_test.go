package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"lockstep/internal/clitest"
	"lockstep/internal/inject"
	"lockstep/internal/telemetry"
)

func init() { clitest.Register(main) }

func TestMain(m *testing.M) { clitest.Dispatch(m) }

// campaignArgs is the small reference campaign every subprocess run uses.
func campaignArgs(out, metrics string, workers int) []string {
	args := []string{
		"-o", out,
		"-kernels", "ttsprk",
		"-cycles", "4000",
		"-stride", "24",
		"-seed", "5",
		"-summary=false",
		fmt.Sprintf("-workers=%d", workers),
	}
	if metrics != "" {
		args = append(args, "-metrics", metrics)
	}
	return args
}

// TestMetricsSnapshotAndDeterminism is the telemetry acceptance test,
// run against the real binary (each subprocess has a fresh Default
// registry): the outcome counters in the -metrics snapshot must sum
// exactly to Config.Total(), and the emitted dataset must be
// byte-identical with and without -metrics, at workers=1 and
// workers=NumCPU.
func TestMetricsSnapshotAndDeterminism(t *testing.T) {
	dir := t.TempDir()
	csvPlain := filepath.Join(dir, "plain.csv")
	csvMetrics := filepath.Join(dir, "metrics.csv")
	csvParallel := filepath.Join(dir, "parallel.csv")
	snap1 := filepath.Join(dir, "snap1.json")
	snapN := filepath.Join(dir, "snapN.json")

	for _, c := range []struct {
		args []string
	}{
		{campaignArgs(csvPlain, "", 1)},
		{campaignArgs(csvMetrics, snap1, 1)},
		{campaignArgs(csvParallel, snapN, runtime.NumCPU())},
	} {
		if res := clitest.Exec(t, c.args...); res.Code != 0 {
			t.Fatalf("%v: exit %d, stderr: %s", c.args, res.Code, res.Stderr)
		}
	}

	plain, err := os.ReadFile(csvPlain)
	if err != nil {
		t.Fatal(err)
	}
	withMetrics, err := os.ReadFile(csvMetrics)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := os.ReadFile(csvParallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, withMetrics) {
		t.Fatal("dataset changed when -metrics was enabled")
	}
	if !bytes.Equal(plain, parallel) {
		t.Fatalf("dataset changed at workers=%d", runtime.NumCPU())
	}

	total, err := inject.Config{
		Kernels:               []string{"ttsprk"},
		RunCycles:             4000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            24,
		Seed:                  5,
	}.Total()
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{snap1, snapN} {
		var snap telemetry.Snapshot
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatalf("%s: snapshot is not valid JSON: %v", path, err)
		}
		var sum, experiments int64
		for _, c := range snap.Counters {
			switch c.Name {
			case "inject.outcomes":
				sum += c.Value
			case "inject.experiments":
				experiments = c.Value
			}
		}
		if sum != int64(total) {
			t.Fatalf("%s: outcome counters sum to %d, want Config.Total()=%d", path, sum, total)
		}
		if experiments != int64(total) {
			t.Fatalf("%s: inject.experiments=%d, want %d", path, experiments, total)
		}
		// The campaign must also have recorded detection latencies and
		// DSR population stats for the detected subset.
		var foundLat, foundPop bool
		for _, h := range snap.Histograms {
			switch h.Name {
			case "inject.detect_latency":
				foundLat = h.Count > 0
			case "lockstep.dsr_popcount":
				foundPop = h.Count > 0
			}
		}
		if !foundLat || !foundPop {
			t.Fatalf("%s: missing campaign histograms (latency=%v popcount=%v)", path, foundLat, foundPop)
		}
	}
}

// TestKillResumeEquivalence is the crash-safety acceptance test, against
// the real binary: a campaign SIGKILLed at a seeded-random checkpoint
// boundary and resumed with -resume must emit a dataset byte-identical to
// an uninterrupted run — at workers=1 and workers=NumCPU.
func TestKillResumeEquivalence(t *testing.T) {
	dir := t.TempDir()

	// Uninterrupted reference.
	refCSV := filepath.Join(dir, "ref.csv")
	if res := clitest.Exec(t, campaignArgs(refCSV, "", 1)...); res.Code != 0 {
		t.Fatalf("reference campaign: exit %d, stderr: %s", res.Code, res.Stderr)
	}
	want, err := os.ReadFile(refCSV)
	if err != nil {
		t.Fatal(err)
	}
	total := bytes.Count(want, []byte("\n")) - 1 // rows minus header

	rng := rand.New(rand.NewSource(5)) // the campaign seed, reused for kill points
	for _, workers := range []int{1, runtime.NumCPU()} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			out := filepath.Join(dir, fmt.Sprintf("w%d.csv", workers))
			ck := filepath.Join(dir, fmt.Sprintf("w%d.lsc", workers))
			args := append(campaignArgs(out, "", workers),
				"-checkpoint", ck, "-checkpoint-every", "10")

			// Kill once the checkpoint covers a seeded random fraction of
			// the plan; the atomic rename guarantees every poll sees a
			// complete file or none.
			target := 1 + rng.Intn(total/2)
			p := clitest.Start(t, args...)
			for {
				snap, err := inject.ReadCheckpoint(ck)
				if err == nil && snap.DoneCount() >= target {
					break
				}
				if err != nil && !os.IsNotExist(err) {
					t.Fatalf("poll checkpoint: %v", err)
				}
				time.Sleep(time.Millisecond)
			}
			res := p.Kill()
			if res.Code == 0 {
				// The campaign beat the kill; the resume below must then be
				// a pure restore, still byte-identical.
				t.Logf("campaign finished before SIGKILL landed (target %d/%d)", target, total)
			}

			resume := append(args, "-resume")
			if res := clitest.Exec(t, resume...); res.Code != 0 {
				t.Fatalf("resume: exit %d, stderr: %s", res.Code, res.Stderr)
			}
			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("resumed dataset (killed at >=%d/%d) is not byte-identical to the uninterrupted run", target, total)
			}
		})
	}
}

// TestCLIResumeRefusals: the binary must exit 1 with a diagnostic when
// -resume meets a corrupt checkpoint or a changed schedule flag — never
// silently restart the campaign.
func TestCLIResumeRefusals(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.csv")
	ck := filepath.Join(dir, "ck.lsc")
	args := append(campaignArgs(out, "", 1), "-checkpoint", ck)
	if res := clitest.Exec(t, args...); res.Code != 0 {
		t.Fatalf("campaign: exit %d, stderr: %s", res.Code, res.Stderr)
	}

	// Changed schedule flag: -seed differs from the checkpointed campaign.
	mismatch := append(campaignArgs(out, "", 1), "-checkpoint", ck, "-resume")
	for i, a := range mismatch {
		if a == "-seed" {
			mismatch[i+1] = "6"
		}
	}
	res := clitest.Exec(t, mismatch...)
	if res.Code != 1 || !strings.Contains(res.Stderr, "Seed") {
		t.Fatalf("resume with changed -seed: exit %d, stderr %q (want exit 1 naming Seed)", res.Code, res.Stderr)
	}

	// Corrupt checkpoint: flip one byte.
	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(ck, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res = clitest.Exec(t, append(args, "-resume")...)
	if res.Code != 1 || !strings.Contains(res.Stderr, "checkpoint") {
		t.Fatalf("resume from corrupt checkpoint: exit %d, stderr %q (want exit 1 mentioning checkpoint)", res.Code, res.Stderr)
	}
}

// TestDistributedKillWorkerEquivalence is the distributed-campaign
// acceptance test against real binaries: a coordinator and two worker
// processes over real HTTP, with worker A SIGKILLed mid-span. The lease
// expires, the span is re-issued to worker B, and the merged dataset
// must be byte-identical to a plain single-process run.
func TestDistributedKillWorkerEquivalence(t *testing.T) {
	dir := t.TempDir()

	refCSV := filepath.Join(dir, "ref.csv")
	if res := clitest.Exec(t, campaignArgs(refCSV, "", 1)...); res.Code != 0 {
		t.Fatalf("reference campaign: exit %d, stderr: %s", res.Code, res.Stderr)
	}
	want, err := os.ReadFile(refCSV)
	if err != nil {
		t.Fatal(err)
	}

	distCSV := filepath.Join(dir, "dist.csv")
	co := clitest.Start(t, append(campaignArgs(distCSV, "", 1),
		"-distribute", "127.0.0.1:0", "-lease-size", "8", "-lease-ttl", "250ms", "-summary=true")...)
	joinLine := co.WaitOutput("join with: lockstep-inject -join ", 30*time.Second)
	_, url, _ := strings.Cut(joinLine, "join with: lockstep-inject -join ")
	url = strings.TrimSpace(strings.SplitN(url, "\n", 2)[0])

	// Worker A: kill it the moment it starts executing its first span.
	wa := clitest.Start(t, "-join", url, "-worker-name", "a", "-workers", "1", "-summary=false")
	aOut := wa.WaitOutput("lease 1: span", 30*time.Second)
	res := wa.Kill()
	if res.Code == 0 {
		t.Fatal("worker a exited cleanly before SIGKILL landed")
	}
	killedMidSpan := !strings.Contains(aOut, "committed")

	// Worker B finishes the campaign, re-running A's abandoned span.
	wb := clitest.Start(t, "-join", url, "-worker-name", "b", "-workers", "1", "-summary=true")
	if res := wb.Wait(); res.Code != 0 {
		t.Fatalf("worker b: exit %d, stderr: %s", res.Code, res.Stderr)
	}
	coRes := co.Wait()
	if coRes.Code != 0 {
		t.Fatalf("coordinator: exit %d, stderr: %s", coRes.Code, coRes.Stderr)
	}
	if killedMidSpan {
		if !strings.Contains(coRes.Stderr, "1 expired") {
			t.Fatalf("worker died mid-span but the coordinator summary shows no expired lease:\n%s", coRes.Stderr)
		}
		if strings.Contains(coRes.Stderr, "0 reissued") {
			t.Fatalf("worker died mid-span but the coordinator summary shows no re-issued lease:\n%s", coRes.Stderr)
		}
	} else {
		t.Log("worker a committed its span before SIGKILL; byte-identity still asserted, re-issue covered by internal/inject tests")
	}

	got, err := os.ReadFile(distCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("distributed dataset (worker SIGKILLed mid-span) is not byte-identical to the single-process run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestDistributeJoinExclusive: a process is either coordinator or
// worker, never both.
func TestDistributeJoinExclusive(t *testing.T) {
	res := clitest.Exec(t, "-distribute", "127.0.0.1:0", "-join", "http://x/v1/campaigns/y")
	if res.Code != 1 || !strings.Contains(res.Stderr, "mutually exclusive") {
		t.Fatalf("exit %d, stderr %q; want exit 1 naming the exclusion", res.Code, res.Stderr)
	}
}

// TestCLIRejectsUnknownKernel checks the error path of the real binary:
// validation failures surface the typed inject.ConfigError rendering —
// `config <Field>: <reason>` — which is the exact message lockstep-serve
// puts in its invalid_config JSON envelope, so the CLI and the server
// report the offending field identically.
func TestCLIRejectsUnknownKernel(t *testing.T) {
	res := clitest.Exec(t, "-o", filepath.Join(t.TempDir(), "x.csv"), "-kernels", "nosuch")
	if res.Code != 1 || !strings.Contains(res.Stderr, "lockstep-inject:") {
		t.Fatalf("unknown kernel: exit %d, stderr %q", res.Code, res.Stderr)
	}
	if want := `config Kernels: unknown kernel "nosuch"`; !strings.Contains(res.Stderr, want) {
		t.Fatalf("stderr %q does not carry the ConfigError rendering %q", res.Stderr, want)
	}
}
