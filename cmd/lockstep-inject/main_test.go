package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"lockstep/internal/clitest"
	"lockstep/internal/inject"
	"lockstep/internal/telemetry"
)

func init() { clitest.Register(main) }

func TestMain(m *testing.M) { clitest.Dispatch(m) }

// campaignArgs is the small reference campaign every subprocess run uses.
func campaignArgs(out, metrics string, workers int) []string {
	args := []string{
		"-o", out,
		"-kernels", "ttsprk",
		"-cycles", "4000",
		"-stride", "24",
		"-seed", "5",
		"-summary=false",
		fmt.Sprintf("-workers=%d", workers),
	}
	if metrics != "" {
		args = append(args, "-metrics", metrics)
	}
	return args
}

// TestMetricsSnapshotAndDeterminism is the telemetry acceptance test,
// run against the real binary (each subprocess has a fresh Default
// registry): the outcome counters in the -metrics snapshot must sum
// exactly to Config.Total(), and the emitted dataset must be
// byte-identical with and without -metrics, at workers=1 and
// workers=NumCPU.
func TestMetricsSnapshotAndDeterminism(t *testing.T) {
	dir := t.TempDir()
	csvPlain := filepath.Join(dir, "plain.csv")
	csvMetrics := filepath.Join(dir, "metrics.csv")
	csvParallel := filepath.Join(dir, "parallel.csv")
	snap1 := filepath.Join(dir, "snap1.json")
	snapN := filepath.Join(dir, "snapN.json")

	for _, c := range []struct {
		args []string
	}{
		{campaignArgs(csvPlain, "", 1)},
		{campaignArgs(csvMetrics, snap1, 1)},
		{campaignArgs(csvParallel, snapN, runtime.NumCPU())},
	} {
		if res := clitest.Exec(t, c.args...); res.Code != 0 {
			t.Fatalf("%v: exit %d, stderr: %s", c.args, res.Code, res.Stderr)
		}
	}

	plain, err := os.ReadFile(csvPlain)
	if err != nil {
		t.Fatal(err)
	}
	withMetrics, err := os.ReadFile(csvMetrics)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := os.ReadFile(csvParallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, withMetrics) {
		t.Fatal("dataset changed when -metrics was enabled")
	}
	if !bytes.Equal(plain, parallel) {
		t.Fatalf("dataset changed at workers=%d", runtime.NumCPU())
	}

	total, err := inject.Config{
		Kernels:               []string{"ttsprk"},
		RunCycles:             4000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            24,
		Seed:                  5,
	}.Total()
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{snap1, snapN} {
		var snap telemetry.Snapshot
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatalf("%s: snapshot is not valid JSON: %v", path, err)
		}
		var sum, experiments int64
		for _, c := range snap.Counters {
			switch c.Name {
			case "inject.outcomes":
				sum += c.Value
			case "inject.experiments":
				experiments = c.Value
			}
		}
		if sum != int64(total) {
			t.Fatalf("%s: outcome counters sum to %d, want Config.Total()=%d", path, sum, total)
		}
		if experiments != int64(total) {
			t.Fatalf("%s: inject.experiments=%d, want %d", path, experiments, total)
		}
		// The campaign must also have recorded detection latencies and
		// DSR population stats for the detected subset.
		var foundLat, foundPop bool
		for _, h := range snap.Histograms {
			switch h.Name {
			case "inject.detect_latency":
				foundLat = h.Count > 0
			case "lockstep.dsr_popcount":
				foundPop = h.Count > 0
			}
		}
		if !foundLat || !foundPop {
			t.Fatalf("%s: missing campaign histograms (latency=%v popcount=%v)", path, foundLat, foundPop)
		}
	}
}

// TestCLIRejectsUnknownKernel checks the error path of the real binary.
func TestCLIRejectsUnknownKernel(t *testing.T) {
	res := clitest.Exec(t, "-o", filepath.Join(t.TempDir(), "x.csv"), "-kernels", "nosuch")
	if res.Code != 1 || !strings.Contains(res.Stderr, "lockstep-inject:") {
		t.Fatalf("unknown kernel: exit %d, stderr %q", res.Code, res.Stderr)
	}
}
