// Command lockstep-inject runs a fault-injection campaign on the dual-CPU
// lockstep SR5 (Section IV-A methodology: every flip-flop, soft +
// stuck-at-0 + stuck-at-1 faults, random injection points in 64 intervals
// of every benchmark) and writes the experiment log as CSV for
// lockstep-train and lockstep-experiments.
//
// Usage:
//
//	lockstep-inject [-o campaign.csv] [-kernels a,b] [-cycles N]
//	                [-stride N] [-inj N] [-seed N] [-workers N] [-summary]
//	                [-mode dcls|slip:N|tmr]
//	                [-checkpoint ck.lsc] [-checkpoint-every N] [-resume]
//	                [-metrics snapshot.json] [-pprof addr] [-legacy-inject]
//	                [-no-prune]
//
// The campaign is sharded over -workers parallel executors (default: all
// CPUs); the output is bit-identical for every worker count and with or
// without -metrics. Experiments run on the golden-trace replay path (one
// CPU simulated per cycle), and sites whose outcome the golden run's
// liveness analysis proves are recorded without simulating at all;
// -no-prune disables that static pruning and -legacy-inject selects the
// original dual-CPU simulation — both produce bit-identical datasets at a
// fraction of the throughput and exist as the differential-testing
// oracles. -metrics dumps the telemetry snapshot (per-kernel /
// per-kind outcome counters, detection-latency histograms, DSR
// bit-population stats) as JSON after the run; -pprof serves
// net/http/pprof and expvar live during it.
//
// -checkpoint makes the campaign crash-safe: an atomic resumable
// checkpoint is rewritten every -checkpoint-every completed experiments
// and once more on completion. After a crash or kill, rerun the same
// command with -resume to continue from the last checkpoint; the final
// dataset is byte-identical to an uninterrupted run at any worker count.
// -resume refuses (exit 1) on a corrupt checkpoint or when any
// schedule-relevant flag differs from the checkpointed campaign.
//
// Distributed campaigns shard the same plan across machines:
//
//	lockstep-inject -distribute 0.0.0.0:9090 [-lease-size N] [-lease-ttl D] ...
//	lockstep-inject -join http://HOST:9090/v1/campaigns/DIGEST [-workers N]
//
// -distribute turns this process into the campaign coordinator: it
// enumerates the plan, serves span leases over HTTP and merges completed
// spans (it simulates nothing itself); -join turns it into a worker that
// pulls leases, executes them on the pruned-replay path and streams
// records back. The merged dataset is byte-identical to a single-machine
// run at any worker count and any lease size; a worker killed mid-span
// merely lets its lease expire and the span is re-issued. -checkpoint and
// -resume work on the coordinator exactly as for a local campaign.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lockstep/internal/inject"
	"lockstep/internal/lockstep"
	"lockstep/internal/server"
	"lockstep/internal/stats"
	"lockstep/internal/telemetry"
)

func main() {
	var (
		out       = flag.String("o", "campaign.csv", "output CSV path (\"-\" for stdout)")
		kernels   = flag.String("kernels", "", "comma-separated kernel names (default: full suite)")
		cycles    = flag.Int("cycles", 12000, "golden run horizon per kernel")
		stride    = flag.Int("stride", 1, "inject every Nth flip-flop")
		perKind   = flag.Int("inj", 1, "injections per (flop, fault kind, kernel)")
		seed      = flag.Int64("seed", 1, "campaign seed")
		mode      = flag.String("mode", "dcls", "lockstep mode: dcls, slip:N (redundant CPU N cycles behind) or tmr (voted triple with forward recovery)")
		workers   = flag.Int("workers", 0, "parallel experiment workers (0 = all CPUs)")
		summary   = flag.Bool("summary", true, "print a campaign summary to stderr")
		metrics   = flag.String("metrics", "", "write the telemetry JSON snapshot to this path after the run")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		legacy    = flag.Bool("legacy-inject", false, "use the legacy dual-CPU simulation instead of golden-trace replay (same dataset, ~2x slower)")
		noPrune   = flag.Bool("no-prune", false, "disable static fault-equivalence pruning (same dataset, slower; the differential-oracle path)")
		ckpt      = flag.String("checkpoint", "", "periodically write an atomic resumable checkpoint to this path")
		ckEvery   = flag.Int("checkpoint-every", 0, "completed experiments between checkpoint writes (0 = default 4096)")
		resume    = flag.Bool("resume", false, "resume from -checkpoint; refuses on a corrupt checkpoint or config mismatch")

		distribute = flag.String("distribute", "", "coordinate a distributed campaign: serve span leases on this address (e.g. 0.0.0.0:9090) and merge worker spans")
		join       = flag.String("join", "", "join a distributed campaign as a worker: coordinator campaign URL (http://host:port/v1/campaigns/DIGEST)")
		leaseSize  = flag.Int("lease-size", 0, "span lease length in plan indices (coordinator default / worker preference; 0 = 512)")
		leaseTTL   = flag.Duration("lease-ttl", 0, "coordinator lease TTL before an uncommitted span is re-issued (0 = 30s)")
		workerName = flag.String("worker-name", "", "stable worker identity for -join (default host-pid)")
	)
	flag.Parse()

	lsMode, err := lockstep.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockstep-inject:", err)
		os.Exit(1)
	}
	cfg := inject.Config{
		RunCycles:             *cycles,
		Intervals:             64,
		InjectionsPerFlopKind: *perKind,
		FlopStride:            *stride,
		Seed:                  *seed,
		Workers:               *workers,
		Legacy:                *legacy,
		NoPrune:               *noPrune,
		Mode:                  lsMode,
		CheckpointPath:        *ckpt,
		CheckpointEvery:       *ckEvery,
		Resume:                *resume,
	}
	if *kernels != "" {
		for _, k := range strings.Split(*kernels, ",") {
			cfg.Kernels = append(cfg.Kernels, strings.TrimSpace(k))
		}
	}
	cfg.Progress = func(done, total int) {
		if done%5000 == 0 || done == total {
			fmt.Fprintf(os.Stderr, "\r%d/%d experiments", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	switch {
	case *distribute != "" && *join != "":
		err = fmt.Errorf("-distribute and -join are mutually exclusive (a process is either the coordinator or a worker)")
	case *distribute != "":
		err = runDistribute(cfg, *distribute, *leaseSize, *leaseTTL, *out, *metrics, *summary, os.Stderr)
	case *join != "":
		err = runJoin(*join, *workerName, *leaseSize, *workers, *metrics, *summary, os.Stderr)
	default:
		err = run(cfg, *out, *metrics, *pprofAddr, *summary, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockstep-inject:", err)
		os.Exit(1)
	}
}

// runDistribute coordinates a distributed campaign: it serves span
// leases on addr and merges worker submissions; it simulates nothing
// itself. SIGINT/SIGTERM stop leasing and — with -checkpoint — persist a
// final checkpoint, so rerunning with -resume continues the campaign.
func runDistribute(cfg inject.Config, addr string, leaseSize int, leaseTTL time.Duration, out, metricsPath string, summary bool, errw io.Writer) error {
	co, err := inject.NewCoordinator(cfg, inject.DistConfig{LeaseSize: leaseSize, LeaseTTL: leaseTTL})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: server.NewDistributor(co)}
	go srv.Serve(ln)
	defer srv.Close()
	done, total := co.Progress()
	fmt.Fprintf(errw, "coordinator: campaign %s, %d/%d experiments merged\n", co.Digest(), done, total)
	fmt.Fprintf(errw, "coordinator: join with: lockstep-inject -join http://%s/v1/campaigns/%s\n", ln.Addr(), co.Digest())

	cancel := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		<-sig
		fmt.Fprintln(errw, "coordinator: interrupted; writing final checkpoint")
		close(cancel)
	}()

	waitErr := co.WaitDone(cancel)
	if waitErr == nil {
		// Keep serving until the stragglers have observed LeaseDone
		// (bounded: a crashed worker never polls again), so workers
		// that did not land the final commit exit 0 instead of dying
		// on connection-refused against a vanished coordinator.
		co.DrainWorkers(2 * time.Second)
	}
	if summary {
		fmt.Fprintf(errw, "coordinator: %s\n", co.Summary())
	}
	if metricsPath != "" {
		if err := writeMetrics(metricsPath); err != nil {
			return err
		}
	}
	if waitErr != nil {
		return waitErr
	}
	ds, st, err := co.Result()
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		return err
	}
	if summary {
		fmt.Fprintf(errw, "throughput: %s\n", st)
	}
	return nil
}

// runJoin executes leases as a distributed-campaign worker until the
// coordinator reports the campaign done. Workers produce no local
// dataset — records stream to the coordinator — so -o is unused here.
func runJoin(url, name string, leaseSize, workers int, metricsPath string, summary bool, errw io.Writer) error {
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	st, err := server.RunWorker(ctx, server.WorkerOptions{
		URL: url, Name: name, LeaseSize: leaseSize, InjectWorkers: workers,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(errw, "worker %s: %s\n", name, fmt.Sprintf(format, args...))
		},
	})
	if summary {
		fmt.Fprintf(errw, "worker %s: %d spans (%d experiments, %d pruned, %d duplicate, %d expired), busy %v of %v\n",
			name, st.Spans, st.Experiments, st.Pruned, st.Duplicates, st.Expired,
			st.Busy.Round(time.Millisecond), st.Elapsed.Round(time.Millisecond))
	}
	if metricsPath != "" {
		if merr := writeMetrics(metricsPath); merr != nil && err == nil {
			err = merr
		}
	}
	return err
}

// writeMetrics dumps the telemetry snapshot to path.
func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.Default.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// run executes the campaign and writes the CSV log, the optional
// telemetry snapshot, and the summary lines (to errw).
func run(cfg inject.Config, out, metricsPath, pprofAddr string, summary bool, errw io.Writer) error {
	if pprofAddr != "" {
		url, err := telemetry.ServeDebug(pprofAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(errw, "debug server: %s/debug/pprof/ (metrics at /debug/vars)\n", url)
	}

	ds, st, err := inject.RunStats(cfg)
	if err != nil {
		return err
	}

	w := io.Writer(os.Stdout)
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		return err
	}

	if metricsPath != "" {
		if err := writeMetrics(metricsPath); err != nil {
			return err
		}
	}

	if summary {
		man := ds.Manifested()
		var times []int
		for _, r := range man.Records {
			times = append(times, r.ManifestationCycles())
		}
		fmt.Fprintf(errw,
			"campaign: %d experiments, %d manifested (%.1f%%), %d distinct diverged SC sets, manifestation time %s cyc\n",
			ds.Len(), man.Len(), 100*float64(man.Len())/float64(ds.Len()),
			ds.DistinctDSRs(), stats.SummarizeInts(times))
		fmt.Fprintf(errw, "throughput: %s\n", st)
	}
	return nil
}
