// Command lockstep-inject runs a fault-injection campaign on the dual-CPU
// lockstep SR5 (Section IV-A methodology: every flip-flop, soft +
// stuck-at-0 + stuck-at-1 faults, random injection points in 64 intervals
// of every benchmark) and writes the experiment log as CSV for
// lockstep-train and lockstep-experiments.
//
// Usage:
//
//	lockstep-inject [-o campaign.csv] [-kernels a,b] [-cycles N]
//	                [-stride N] [-inj N] [-seed N] [-workers N] [-summary]
//
// The campaign is sharded over -workers parallel executors (default: all
// CPUs); the output is bit-identical for every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lockstep/internal/inject"
	"lockstep/internal/stats"
)

func main() {
	var (
		out     = flag.String("o", "campaign.csv", "output CSV path (\"-\" for stdout)")
		kernels = flag.String("kernels", "", "comma-separated kernel names (default: full suite)")
		cycles  = flag.Int("cycles", 12000, "golden run horizon per kernel")
		stride  = flag.Int("stride", 1, "inject every Nth flip-flop")
		perKind = flag.Int("inj", 1, "injections per (flop, fault kind, kernel)")
		seed    = flag.Int64("seed", 1, "campaign seed")
		workers = flag.Int("workers", 0, "parallel experiment workers (0 = all CPUs)")
		summary = flag.Bool("summary", true, "print a campaign summary to stderr")
	)
	flag.Parse()

	cfg := inject.Config{
		RunCycles:             *cycles,
		Intervals:             64,
		InjectionsPerFlopKind: *perKind,
		FlopStride:            *stride,
		Seed:                  *seed,
		Workers:               *workers,
	}
	if *kernels != "" {
		for _, k := range strings.Split(*kernels, ",") {
			cfg.Kernels = append(cfg.Kernels, strings.TrimSpace(k))
		}
	}
	cfg.Progress = func(done, total int) {
		if done%5000 == 0 || done == total {
			fmt.Fprintf(os.Stderr, "\r%d/%d experiments", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	ds, st, err := inject.RunStats(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockstep-inject:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockstep-inject:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "lockstep-inject:", err)
		os.Exit(1)
	}

	if *summary {
		man := ds.Manifested()
		var times []int
		for _, r := range man.Records {
			times = append(times, r.ManifestationCycles())
		}
		fmt.Fprintf(os.Stderr,
			"campaign: %d experiments, %d manifested (%.1f%%), %d distinct diverged SC sets, manifestation time %s cyc\n",
			ds.Len(), man.Len(), 100*float64(man.Len())/float64(ds.Len()),
			ds.DistinctDSRs(), stats.SummarizeInts(times))
		fmt.Fprintf(os.Stderr, "throughput: %s\n", st)
	}
}
