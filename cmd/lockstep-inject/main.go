// Command lockstep-inject runs a fault-injection campaign on the dual-CPU
// lockstep SR5 (Section IV-A methodology: every flip-flop, soft +
// stuck-at-0 + stuck-at-1 faults, random injection points in 64 intervals
// of every benchmark) and writes the experiment log as CSV for
// lockstep-train and lockstep-experiments.
//
// Usage:
//
//	lockstep-inject [-o campaign.csv] [-kernels a,b] [-cycles N]
//	                [-stride N] [-inj N] [-seed N] [-workers N] [-summary]
//	                [-checkpoint ck.lsc] [-checkpoint-every N] [-resume]
//	                [-metrics snapshot.json] [-pprof addr] [-legacy-inject]
//	                [-no-prune]
//
// The campaign is sharded over -workers parallel executors (default: all
// CPUs); the output is bit-identical for every worker count and with or
// without -metrics. Experiments run on the golden-trace replay path (one
// CPU simulated per cycle), and sites whose outcome the golden run's
// liveness analysis proves are recorded without simulating at all;
// -no-prune disables that static pruning and -legacy-inject selects the
// original dual-CPU simulation — both produce bit-identical datasets at a
// fraction of the throughput and exist as the differential-testing
// oracles. -metrics dumps the telemetry snapshot (per-kernel /
// per-kind outcome counters, detection-latency histograms, DSR
// bit-population stats) as JSON after the run; -pprof serves
// net/http/pprof and expvar live during it.
//
// -checkpoint makes the campaign crash-safe: an atomic resumable
// checkpoint is rewritten every -checkpoint-every completed experiments
// and once more on completion. After a crash or kill, rerun the same
// command with -resume to continue from the last checkpoint; the final
// dataset is byte-identical to an uninterrupted run at any worker count.
// -resume refuses (exit 1) on a corrupt checkpoint or when any
// schedule-relevant flag differs from the checkpointed campaign.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lockstep/internal/inject"
	"lockstep/internal/stats"
	"lockstep/internal/telemetry"
)

func main() {
	var (
		out       = flag.String("o", "campaign.csv", "output CSV path (\"-\" for stdout)")
		kernels   = flag.String("kernels", "", "comma-separated kernel names (default: full suite)")
		cycles    = flag.Int("cycles", 12000, "golden run horizon per kernel")
		stride    = flag.Int("stride", 1, "inject every Nth flip-flop")
		perKind   = flag.Int("inj", 1, "injections per (flop, fault kind, kernel)")
		seed      = flag.Int64("seed", 1, "campaign seed")
		workers   = flag.Int("workers", 0, "parallel experiment workers (0 = all CPUs)")
		summary   = flag.Bool("summary", true, "print a campaign summary to stderr")
		metrics   = flag.String("metrics", "", "write the telemetry JSON snapshot to this path after the run")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		legacy    = flag.Bool("legacy-inject", false, "use the legacy dual-CPU simulation instead of golden-trace replay (same dataset, ~2x slower)")
		noPrune   = flag.Bool("no-prune", false, "disable static fault-equivalence pruning (same dataset, slower; the differential-oracle path)")
		ckpt      = flag.String("checkpoint", "", "periodically write an atomic resumable checkpoint to this path")
		ckEvery   = flag.Int("checkpoint-every", 0, "completed experiments between checkpoint writes (0 = default 4096)")
		resume    = flag.Bool("resume", false, "resume from -checkpoint; refuses on a corrupt checkpoint or config mismatch")
	)
	flag.Parse()

	cfg := inject.Config{
		RunCycles:             *cycles,
		Intervals:             64,
		InjectionsPerFlopKind: *perKind,
		FlopStride:            *stride,
		Seed:                  *seed,
		Workers:               *workers,
		Legacy:                *legacy,
		NoPrune:               *noPrune,
		CheckpointPath:        *ckpt,
		CheckpointEvery:       *ckEvery,
		Resume:                *resume,
	}
	if *kernels != "" {
		for _, k := range strings.Split(*kernels, ",") {
			cfg.Kernels = append(cfg.Kernels, strings.TrimSpace(k))
		}
	}
	cfg.Progress = func(done, total int) {
		if done%5000 == 0 || done == total {
			fmt.Fprintf(os.Stderr, "\r%d/%d experiments", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	if err := run(cfg, *out, *metrics, *pprofAddr, *summary, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lockstep-inject:", err)
		os.Exit(1)
	}
}

// run executes the campaign and writes the CSV log, the optional
// telemetry snapshot, and the summary lines (to errw).
func run(cfg inject.Config, out, metricsPath, pprofAddr string, summary bool, errw io.Writer) error {
	if pprofAddr != "" {
		url, err := telemetry.ServeDebug(pprofAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(errw, "debug server: %s/debug/pprof/ (metrics at /debug/vars)\n", url)
	}

	ds, st, err := inject.RunStats(cfg)
	if err != nil {
		return err
	}

	w := io.Writer(os.Stdout)
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		return err
	}

	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := telemetry.Default.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if summary {
		man := ds.Manifested()
		var times []int
		for _, r := range man.Records {
			times = append(times, r.ManifestationCycles())
		}
		fmt.Fprintf(errw,
			"campaign: %d experiments, %d manifested (%.1f%%), %d distinct diverged SC sets, manifestation time %s cyc\n",
			ds.Len(), man.Len(), 100*float64(man.Len())/float64(ds.Len()),
			ds.DistinctDSRs(), stats.SummarizeInts(times))
		fmt.Fprintf(errw, "throughput: %s\n", st)
	}
	return nil
}
