package main

import (
	"os"
	"testing"
)

func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	t.Cleanup(func() { os.Stdout = old; null.Close() })
}

func TestTraceByRegister(t *testing.T) {
	silence(t)
	if err := run("rspeed", -1, "LSUAddr", 9, "stuck1", 3000, 16, 8000); err != nil {
		t.Fatal(err)
	}
}

func TestTraceByFlopIndex(t *testing.T) {
	silence(t)
	if err := run("puwmod", 100, "", 0, "soft", 2000, 8, 6000); err != nil {
		t.Fatal(err)
	}
	if err := run("puwmod", 100, "", 0, "stuck0", 2000, 8, 6000); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRejectsBadInputs(t *testing.T) {
	silence(t)
	cases := []error{
		run("nosuch", 0, "", 0, "soft", 100, 8, 1000),
		run("rspeed", 0, "", 0, "gamma-ray", 100, 8, 1000),
		run("rspeed", -1, "NoSuchReg", 0, "soft", 100, 8, 1000),
		run("rspeed", 1<<30, "", 0, "soft", 100, 8, 1000),
		run("rspeed", 0, "", 0, "soft", 5000, 8, 1000), // cycle beyond horizon
	}
	for i, err := range cases {
		if err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
