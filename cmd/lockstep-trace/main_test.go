package main

import (
	"bytes"
	"strings"
	"testing"

	"lockstep/internal/clitest"
)

func init() { clitest.Register(main) }

func TestMain(m *testing.M) { clitest.Dispatch(m) }

func TestTraceByRegister(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "rspeed", -1, "LSUAddr", 9, "stuck1", 3000, 16, 8000); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("trace produced no output")
	}
}

func TestTraceByFlopIndex(t *testing.T) {
	for _, kind := range []string{"soft", "stuck0"} {
		var out bytes.Buffer
		if err := run(&out, "puwmod", 100, "", 0, kind, 2000, 8, 6000); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestTraceRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	cases := []error{
		run(&out, "nosuch", 0, "", 0, "soft", 100, 8, 1000),
		run(&out, "rspeed", 0, "", 0, "gamma-ray", 100, 8, 1000),
		run(&out, "rspeed", -1, "NoSuchReg", 0, "soft", 100, 8, 1000),
		run(&out, "rspeed", 1<<30, "", 0, "soft", 100, 8, 1000),
		run(&out, "rspeed", 0, "", 0, "soft", 5000, 8, 1000), // cycle beyond horizon
	}
	for i, err := range cases {
		if err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestCLIExitStatus runs the real binary: -list exits 0 and enumerates
// registers; a bad kernel exits 1 with the error prefix.
func TestCLIExitStatus(t *testing.T) {
	res := clitest.Exec(t, "-list")
	if res.Code != 0 {
		t.Fatalf("-list: exit %d, stderr: %s", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stdout, "LSUAddr") {
		t.Fatalf("-list missing LSUAddr register:\n%s", res.Stdout)
	}
	res = clitest.Exec(t, "-kernel", "nosuch")
	if res.Code != 1 || !strings.Contains(res.Stderr, "lockstep-trace:") {
		t.Fatalf("bad kernel: exit %d, stderr %q", res.Code, res.Stderr)
	}
}
