// Command lockstep-trace replays one fault-injection experiment and prints
// the per-cycle divergence grid around the detection point: which signal
// categories diverge on which cycles, and what the accumulated Divergence
// Status Register ends up holding. A debugging companion to
// lockstep-inject for understanding signature formation.
//
// Usage:
//
//	lockstep-trace -kernel ttsprk -reg LSUAddr -bit 9 -kind stuck1
//	               [-cycle 3000] [-window 24] [-cycles 12000]
//	lockstep-trace -kernel ttsprk -flop 851 -kind soft
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lockstep/internal/cpu"
	"lockstep/internal/lockstep"
	"lockstep/internal/workload"
)

func main() {
	var (
		kernel = flag.String("kernel", "ttsprk", "workload kernel name")
		flop   = flag.Int("flop", -1, "flat flop index to inject (alternative to -reg/-bit)")
		reg    = flag.String("reg", "", "register name to inject (see lockstep-trace -list)")
		bit    = flag.Int("bit", 0, "bit within -reg")
		kind   = flag.String("kind", "stuck1", "fault kind: soft, stuck0 or stuck1")
		cycle  = flag.Int("cycle", 3000, "absolute injection cycle")
		window = flag.Int("window", 24, "divergence cycles to record after detection")
		cycles = flag.Int("cycles", 12000, "golden run horizon")
		list   = flag.Bool("list", false, "list register names and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range cpu.Registry() {
			fmt.Printf("%-12s %-12s %2d bits\n", r.Name, r.Fine, r.Width)
		}
		return
	}
	if err := run(os.Stdout, *kernel, *flop, *reg, *bit, *kind, *cycle, *window, *cycles); err != nil {
		fmt.Fprintln(os.Stderr, "lockstep-trace:", err)
		os.Exit(1)
	}
}

// run replays the experiment and prints the divergence grid to w.
func run(w io.Writer, kernel string, flop int, reg string, bit int, kindName string, cycle, window, cycles int) error {
	k := workload.ByName(kernel)
	if k == nil {
		return fmt.Errorf("unknown kernel %q", kernel)
	}
	var kind lockstep.FaultKind
	switch kindName {
	case "soft":
		kind = lockstep.SoftFlip
	case "stuck0":
		kind = lockstep.Stuck0
	case "stuck1":
		kind = lockstep.Stuck1
	default:
		return fmt.Errorf("unknown fault kind %q (soft|stuck0|stuck1)", kindName)
	}
	if reg != "" {
		flop = -1
		for i := 0; i < cpu.NumFlops(); i++ {
			f := cpu.FlopAt(i)
			if cpu.Registry()[f.Reg].Name == reg && int(f.Bit) == bit {
				flop = i
				break
			}
		}
		if flop < 0 {
			return fmt.Errorf("no flop %s[%d]; try -list", reg, bit)
		}
	}
	if flop < 0 || flop >= cpu.NumFlops() {
		return fmt.Errorf("flop index %d out of range [0, %d)", flop, cpu.NumFlops())
	}
	if cycle >= cycles {
		return fmt.Errorf("injection cycle %d beyond horizon %d", cycle, cycles)
	}

	g, err := lockstep.NewGolden(k, cycles, cycles/16)
	if err != nil {
		return err
	}
	tr := g.Trace(lockstep.Injection{Flop: flop, Kind: kind, Cycle: cycle}, window)
	tr.Print(w)
	return nil
}
