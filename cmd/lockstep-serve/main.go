// Command lockstep-serve exposes the lockstep tooling as a long-running
// HTTP service: online error-correlation prediction from a trained table
// and a crash-safe fault-injection campaign job API.
//
// Usage:
//
//	lockstep-serve [-addr host:port] [-table table.lspt] [-data dir]
//	               [-campaign-workers N] [-inject-workers N]
//	               [-lease-size N] [-lease-ttl D]
//	               [-max-inflight N] [-max-batch N]
//	               [-request-timeout D] [-drain-timeout D]
//	               [-table-access N] [-metrics snapshot.json] [-pprof addr]
//
// With -table, POST /v1/predict maps DSR snapshots through the trained
// prediction table (the paper's DSR → PTAR → table-entry flow) to a
// predicted unit test order and soft/hard verdict. With -data, the
// campaign API (POST /v1/campaigns, GET /v1/campaigns/{id}[/dataset])
// runs inject campaigns on a bounded worker pool; every job is
// checkpointed into the data directory, so a killed or drained server
// resumes its jobs on restart and the final datasets are byte-identical
// to uninterrupted runs. A campaign submitted with distribute:true runs
// as a lease coordinator instead: worker nodes (`lockstep-inject -join`)
// pull span leases from POST /v1/campaigns/{id}/leases, execute them,
// and push records back to POST /v1/campaigns/{id}/spans; -lease-size
// and -lease-ttl set the defaults for span length and re-issue timeout.
//
// SIGINT/SIGTERM drains gracefully: running campaigns stop at the next
// experiment boundary and write a final checkpoint, in-flight HTTP
// requests finish, and the process exits 0. Restarting with the same
// -data resumes automatically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lockstep/internal/core"
	"lockstep/internal/sbist"
	"lockstep/internal/server"
	"lockstep/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8172", "listen address (port 0 picks a free port)")
		tablePath  = flag.String("table", "", "trained prediction table image (lockstep-train -o); empty disables /v1/predict")
		dataDir    = flag.String("data", "", "campaign job directory (manifests, checkpoints, datasets); empty disables the campaign API")
		campaigns  = flag.Int("campaign-workers", 1, "concurrent campaign jobs")
		injWorkers = flag.Int("inject-workers", 0, "per-job experiment worker cap (0 = all CPUs)")
		leaseSize  = flag.Int("lease-size", 0, "distributed campaigns: default span lease length in plan indices (0 = 512)")
		leaseTTL   = flag.Duration("lease-ttl", 0, "distributed campaigns: lease TTL before an uncommitted span is re-issued (0 = 30s)")
		inflight   = flag.Int("max-inflight", 64, "concurrent HTTP requests before answering 429")
		maxBatch   = flag.Int("max-batch", 1024, "max DSRs in one predict request")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request deadline (504 when exceeded)")
		drainTime  = flag.Duration("drain-timeout", time.Minute, "graceful shutdown budget for draining jobs and requests")
		tblAccess  = flag.Int64("table-access", sbist.OnChipTableAccess, "prediction table read latency in cycles (annotates predictions)")
		metrics    = flag.String("metrics", "", "write the telemetry JSON snapshot to this path on shutdown")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and expvar on this address")
	)
	flag.Parse()

	opt := server.Options{
		DataDir:         *dataDir,
		CampaignWorkers: *campaigns,
		InjectWorkers:   *injWorkers,
		LeaseSize:       *leaseSize,
		LeaseTTL:        *leaseTTL,
		MaxInFlight:     *inflight,
		MaxBatch:        *maxBatch,
		RequestTimeout:  *reqTimeout,
	}
	if err := run(opt, *addr, *tablePath, *tblAccess, *metrics, *pprofAddr, *drainTime, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lockstep-serve:", err)
		os.Exit(1)
	}
}

// run builds the service, serves it until SIGINT/SIGTERM, then drains:
// campaigns checkpoint and stop, in-flight requests finish, the optional
// metrics snapshot is written, and run returns nil for a clean exit 0.
func run(opt server.Options, addr, tablePath string, tblAccess int64, metricsPath, pprofAddr string, drainTimeout time.Duration, errw io.Writer) error {
	if tablePath != "" {
		f, err := os.Open(tablePath)
		if err != nil {
			return err
		}
		table, err := core.ReadTable(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("reading table %s: %w", tablePath, err)
		}
		opt.Table = table
		opt.SBIST = sbist.NewConfig(table.Gran, nil, tblAccess)
		fmt.Fprintf(errw, "lockstep-serve: loaded table %s (%s, %d sets, %d table bits)\n",
			tablePath, table.Gran, table.Dict.Len(), table.TableBits())
	}
	opt.TableAccess = tblAccess
	if pprofAddr != "" {
		url, err := telemetry.ServeDebug(pprofAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(errw, "lockstep-serve: debug server: %s/debug/pprof/\n", url)
	}

	srv, err := server.New(opt)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(errw, "lockstep-serve: listening on http://%s\n", ln.Addr())
	if opt.DataDir == "" {
		fmt.Fprintln(errw, "lockstep-serve: campaign API disabled (no -data)")
	}
	// The active version may differ from -table: a table activated in a
	// previous run is persisted under -data and wins on restart.
	if v := srv.TableVersion(); v != "" {
		fmt.Fprintf(errw, "lockstep-serve: serving table version %s\n", v)
	} else {
		fmt.Fprintln(errw, "lockstep-serve: /v1/predict disabled until a table is loaded (use -table or POST /v1/tables)")
	}

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(errw, "lockstep-serve: %v: draining (campaigns checkpoint and stop, requests finish)\n", s)
	case err := <-serveErr:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return err
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}

	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := telemetry.Default.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintln(errw, "lockstep-serve: drained; bye")
	return nil
}
