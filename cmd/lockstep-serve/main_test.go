package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"lockstep/internal/clitest"
	"lockstep/internal/core"
	"lockstep/internal/inject"
)

func init()                 { clitest.Register(main) }
func TestMain(m *testing.M) { clitest.Dispatch(m) }

// e2eCampaign is the schedule used by the end-to-end tests; the direct
// inject.Run comparison uses the same values.
func e2eCampaign(stride int) inject.Config {
	return inject.Config{
		Kernels:               []string{"ttsprk"},
		RunCycles:             3000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            stride,
		Seed:                  9,
	}
}

func e2eJSON(stride int, extra string) string {
	return fmt.Sprintf(`{"kernels":["ttsprk"],"run_cycles":3000,"flop_stride":%d,"seed":9%s}`, stride, extra)
}

// directCSV runs the same campaign in-process and renders its CSV — the
// byte-identity oracle for datasets downloaded over HTTP.
func directCSV(t *testing.T, stride int) []byte {
	t.Helper()
	ds, err := inject.Run(e2eCampaign(stride))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeTableImage trains a table from a small campaign and serializes it
// the way lockstep-train would.
func writeTableImage(t *testing.T, path string) *core.Table {
	t.Helper()
	ds, err := inject.Run(e2eCampaign(24))
	if err != nil {
		t.Fatal(err)
	}
	table := core.Train(ds, core.Coarse7, 0)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := table.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return table
}

var addrRe = regexp.MustCompile(`listening on (http://[^\s]+)`)
var versionRe = regexp.MustCompile(`serving table version ([0-9a-f]{16})`)

// servingVersion extracts the table version the binary logged at startup.
func servingVersion(t *testing.T, p *clitest.Proc) string {
	t.Helper()
	out := p.WaitOutput("serving table version", 30*time.Second)
	m := versionRe.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no serving-version line in output:\n%s", out)
	}
	return m[1]
}

// startServer launches lockstep-serve on a random port and returns its
// base URL.
func startServer(t *testing.T, args ...string) (*clitest.Proc, string) {
	t.Helper()
	p := clitest.Start(t, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	out := p.WaitOutput("listening on http://", 30*time.Second)
	m := addrRe.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no listen address in output:\n%s", out)
	}
	return p, m[1]
}

// httpJSON performs a request against the live server and decodes the
// JSON response.
func httpJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]any{}
	if strings.Contains(resp.Header.Get("Content-Type"), "json") {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	} else {
		out["raw"] = string(data)
	}
	return resp.StatusCode, out
}

// pollJob polls the live server's status endpoint until the job reaches
// want (failing fast on "failed").
func pollJob(t *testing.T, base, id, want string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		code, st := httpJSON(t, "GET", base+"/v1/campaigns/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("status poll: %d %v", code, st)
		}
		state := st["state"].(string)
		if state == want {
			return st
		}
		if state == "failed" || time.Now().After(deadline) {
			t.Fatalf("job in state %q (error %v), want %q", state, st["error"], want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeEndToEnd is the full happy path against the real binary:
// start on a random port with a trained table, submit a campaign over
// HTTP, poll it to completion, and verify the downloaded dataset is
// byte-identical to running the same schedule directly with inject.Run.
// Predictions served over HTTP must match the trained table, and SIGTERM
// must exit 0 after a drain.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "table.lspt")
	table := writeTableImage(t, img)

	p, base := startServer(t, "-data", filepath.Join(dir, "jobs"), "-table", img)

	// Submit and run a campaign to completion.
	code, sub := httpJSON(t, "POST", base+"/v1/campaigns", e2eJSON(24, ""))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, sub)
	}
	id := sub["id"].(string)
	pollJob(t, base, id, "done")

	code, ds := httpJSON(t, "GET", base+"/v1/campaigns/"+id+"/dataset", "")
	if code != http.StatusOK {
		t.Fatalf("dataset: %d", code)
	}
	if got, want := []byte(ds["raw"].(string)), directCSV(t, 24); !bytes.Equal(got, want) {
		t.Fatalf("HTTP dataset (%d bytes) differs from direct inject.Run (%d bytes)", len(got), len(want))
	}

	// Predictions over HTTP match the trained table.
	code, pr := httpJSON(t, "POST", base+"/v1/predict", `{"dsr":"8"}`)
	if code != http.StatusOK {
		t.Fatalf("predict: %d %v", code, pr)
	}
	pred := pr["predictions"].([]any)[0].(map[string]any)
	want := table.Predict(8)
	wantType := "soft"
	if want.Hard {
		wantType = "hard"
	}
	if pred["type"] != wantType || pred["known"].(bool) != want.Known {
		t.Fatalf("served prediction %v, table says type=%s known=%v", pred, wantType, want.Known)
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	p.Signal(syscall.SIGTERM)
	res := p.Wait()
	if res.Code != 0 {
		t.Fatalf("SIGTERM exit code %d\nstderr:\n%s", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stderr, "draining") || !strings.Contains(res.Stderr, "drained; bye") {
		t.Fatalf("no drain messages in stderr:\n%s", res.Stderr)
	}
}

// TestServeSigtermMidJobResumes is the crash-safety contract end to end:
// SIGTERM lands while a campaign runs; the server checkpoints, drains and
// exits 0; a restarted server on the same data directory adopts the job,
// resumes it from the checkpoint, and the final dataset is byte-identical
// to an uninterrupted direct run.
func TestServeSigtermMidJobResumes(t *testing.T) {
	dataDir := t.TempDir()
	// stride 2 keeps the unpruned campaign running for hundreds of
	// milliseconds after the progress poll breaks, so the SIGTERM below
	// reliably lands mid-job rather than racing campaign completion.
	const stride = 2

	// no_prune keeps every experiment on the simulated path: the job runs
	// long enough for SIGTERM to land mid-campaign, and the byte-compare
	// against the pruned directCSV oracle doubles as an end-to-end check
	// of the pruning determinism contract over HTTP.
	p, base := startServer(t, "-data", dataDir)
	code, sub := httpJSON(t, "POST", base+"/v1/campaigns",
		e2eJSON(stride, `,"checkpoint_every":8,"workers":2,"no_prune":true`))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, sub)
	}
	id := sub["id"].(string)

	// Let it make real progress, then SIGTERM mid-job.
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, st := httpJSON(t, "GET", base+"/v1/campaigns/"+id, "")
		if st["state"].(string) == "done" {
			t.Skip("campaign finished before SIGTERM could land mid-job")
		}
		if st["done"].(float64) >= 16 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never progressed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Signal(syscall.SIGTERM)
	res := p.Wait()
	if res.Code != 0 {
		t.Fatalf("SIGTERM exit code %d\nstderr:\n%s", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stderr, "draining") {
		t.Fatalf("no drain message in stderr:\n%s", res.Stderr)
	}
	if _, err := os.Stat(filepath.Join(dataDir, id+".csv")); err == nil {
		t.Fatal("interrupted job left a final dataset; drain should stop before completion")
	}
	if _, err := os.Stat(filepath.Join(dataDir, id+".ck")); err != nil {
		t.Fatalf("interrupted job left no checkpoint: %v", err)
	}

	// Restart on the same directory: the job is adopted and resumed
	// without resubmission.
	_, base2 := startServer(t, "-data", dataDir)
	final := pollJob(t, base2, id, "done")
	if restored := final["restored"].(float64); restored < 16 {
		t.Fatalf("resumed job restored %v experiments, want >= 16", restored)
	}

	code, ds := httpJSON(t, "GET", base2+"/v1/campaigns/"+id+"/dataset", "")
	if code != http.StatusOK {
		t.Fatalf("dataset after resume: %d", code)
	}
	if got, want := []byte(ds["raw"].(string)), directCSV(t, stride); !bytes.Equal(got, want) {
		t.Fatal("kill-and-restart dataset differs from uninterrupted direct run")
	}
}

// TestServeTrainSwapAcrossRestart is the hot-table-reload contract
// against the real binary: a campaign submitted with "train": true is
// SIGTERMed mid-job before it can train; the restarted server serves the
// old table while it resumes the job; on completion it trains from the
// campaign's dataset and atomically swaps the new version in; and a
// further restart — without the -table flag at all — adopts the trained
// table as the persisted active version.
func TestServeTrainSwapAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "table.lspt")
	writeTableImage(t, img)
	dataDir := filepath.Join(dir, "jobs")
	const stride = 2

	p, base := startServer(t, "-data", dataDir, "-table", img)
	v0 := servingVersion(t, p)

	code, sub := httpJSON(t, "POST", base+"/v1/campaigns",
		e2eJSON(stride, `,"checkpoint_every":8,"workers":2,"no_prune":true,"train":true,"train_granularity":13`))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, sub)
	}
	id := sub["id"].(string)

	// Let the campaign make real progress, then SIGTERM well before it can
	// finish and train.
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, st := httpJSON(t, "GET", base+"/v1/campaigns/"+id, "")
		if st["state"].(string) == "done" {
			t.Skip("campaign finished before SIGTERM could land mid-job")
		}
		if st["done"].(float64) >= 16 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never progressed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Signal(syscall.SIGTERM)
	if res := p.Wait(); res.Code != 0 {
		t.Fatalf("SIGTERM exit code %d\nstderr:\n%s", res.Code, res.Stderr)
	}

	// Restart: the old table keeps serving while the adopted job resumes —
	// the startup log names the version before any swap can land.
	p2, base2 := startServer(t, "-data", dataDir, "-table", img)
	if got := servingVersion(t, p2); got != v0 {
		t.Fatalf("restart serves version %s before training completed, want the old table %s", got, v0)
	}

	// The resumed job completes, trains from its own dataset, and swaps.
	final := pollJob(t, base2, id, "done")
	trained, _ := final["trained_table"].(string)
	if trained == "" {
		t.Fatalf("resumed train:true job finished without a trained table: %v", final)
	}
	if trained == v0 {
		t.Fatal("trained version equals the startup version; the swap is unobservable")
	}
	code, hz := httpJSON(t, "GET", base2+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	hzTable := hz["table"].(map[string]any)
	if hzTable["version"] != trained {
		t.Fatalf("healthz serves %v after train-on-completion, want %s", hzTable["version"], trained)
	}
	code, list := httpJSON(t, "GET", base2+"/v1/tables", "")
	if code != http.StatusOK || list["active"] != trained {
		t.Fatalf("tables list: %d %v, want active %s", code, list, trained)
	}
	if n := len(list["tables"].([]any)); n < 2 {
		t.Fatalf("tables list has %d versions, want both the startup and trained tables", n)
	}
	p2.Signal(syscall.SIGTERM)
	if res := p2.Wait(); res.Code != 0 {
		t.Fatalf("SIGTERM exit code %d\nstderr:\n%s", res.Code, res.Stderr)
	}

	// Final restart with no -table flag: the persisted activation alone
	// decides what serves.
	p3, base3 := startServer(t, "-data", dataDir)
	if got := servingVersion(t, p3); got != trained {
		t.Fatalf("tableless restart serves %s, want the trained table %s", got, trained)
	}
	code, pr := httpJSON(t, "POST", base3+"/v1/predict", `{"dsr":"8"}`)
	if code != http.StatusOK || len(pr["predictions"].([]any)) != 1 {
		t.Fatalf("predict after tableless restart: %d %v", code, pr)
	}
	p3.Signal(syscall.SIGTERM)
	if res := p3.Wait(); res.Code != 0 {
		t.Fatalf("SIGTERM exit code %d\nstderr:\n%s", res.Code, res.Stderr)
	}
}
