// Command lockstep-merge combines several campaign logs (e.g. produced on
// different machines, with different seeds, or covering different kernels)
// into one dataset for training — the way the paper's two-week cluster
// campaign would be assembled from per-node shards.
//
// Usage:
//
//	lockstep-merge -o merged.csv shard1.csv shard2.csv ...
//
// Exact duplicate records (identical kernel/flop/kind/cycle coordinates
// and outcome) are dropped; conflicting records for the same experiment
// coordinates are an error, since they indicate shards from incompatible
// builds.
package main

import (
	"flag"
	"fmt"
	"os"

	"lockstep/internal/dataset"
)

func main() {
	out := flag.String("o", "merged.csv", "output CSV path (\"-\" for stdout)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: lockstep-merge [-o merged.csv] shard.csv...")
		os.Exit(2)
	}
	merged, stats, err := merge(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockstep-merge:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockstep-merge:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := merged.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "lockstep-merge:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "merged %d shards: %d records (%d duplicates dropped)\n",
		flag.NArg(), merged.Len(), stats.duplicates)
}

type mergeStats struct {
	duplicates int
}

// key identifies one experiment's coordinates.
type key struct {
	kernel string
	flop   int
	kind   uint8
	cycle  int
}

func merge(paths []string) (*dataset.Dataset, mergeStats, error) {
	var st mergeStats
	seen := map[key]dataset.Record{}
	merged := &dataset.Dataset{}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, st, err
		}
		ds, err := dataset.ReadCSV(f)
		f.Close()
		if err != nil {
			return nil, st, fmt.Errorf("%s: %w", path, err)
		}
		for _, r := range ds.Records {
			k := key{kernel: r.Kernel, flop: r.Flop, kind: uint8(r.Kind), cycle: r.InjectCycle}
			if prev, dup := seen[k]; dup {
				if prev != r {
					return nil, st, fmt.Errorf(
						"%s: conflicting outcomes for %s flop %d %v cycle %d (incompatible shards?)",
						path, r.Kernel, r.Flop, r.Kind, r.InjectCycle)
				}
				st.duplicates++
				continue
			}
			seen[k] = r
			merged.Records = append(merged.Records, r)
		}
	}
	return merged, st, nil
}
