package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lockstep/internal/clitest"
	"lockstep/internal/inject"
)

func init() { clitest.Register(main) }

func TestMain(m *testing.M) { clitest.Dispatch(m) }

func shard(t *testing.T, kernel string, seed int64) string {
	t.Helper()
	ds, err := inject.Run(inject.Config{
		Kernels:               []string{kernel},
		RunCycles:             5000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            64,
		Seed:                  seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), kernel+".csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMergeDisjointShards(t *testing.T) {
	a := shard(t, "ttsprk", 1)
	b := shard(t, "puwmod", 1)
	merged, st, err := merge([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if st.duplicates != 0 {
		t.Fatalf("%d duplicates in disjoint shards", st.duplicates)
	}
	kernels := map[string]bool{}
	for _, r := range merged.Records {
		kernels[r.Kernel] = true
	}
	if !kernels["ttsprk"] || !kernels["puwmod"] {
		t.Fatal("merged dataset missing a shard's kernel")
	}
}

func TestMergeDropsExactDuplicates(t *testing.T) {
	a := shard(t, "rspeed", 3)
	merged, st, err := merge([]string{a, a})
	if err != nil {
		t.Fatal(err)
	}
	if st.duplicates != merged.Len() {
		t.Fatalf("duplicates %d, want %d", st.duplicates, merged.Len())
	}
}

func TestMergeRejectsConflicts(t *testing.T) {
	a := shard(t, "rspeed", 3)
	// Corrupt a copy: flip one record's detection flag (the detected
	// column) on exactly one line.
	data, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(t.TempDir(), "conflict.csv")
	changed := false
	var out []string
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if !changed && strings.Contains(line, ",true,") {
			line = strings.Replace(line, ",true,", ",false,", 1)
			changed = true
		}
		out = append(out, line)
	}
	if !changed {
		t.Skip("no detected record to corrupt")
	}
	if err := os.WriteFile(b, []byte(strings.Join(out, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := merge([]string{a, b}); err == nil {
		t.Fatal("conflicting shards accepted")
	}
}

// TestCLIExitStatus runs the real binary: merging shards exits 0 and
// reports the shard/record counts; no arguments is a usage error (exit
// 2); an unreadable shard exits 1.
func TestCLIExitStatus(t *testing.T) {
	a := shard(t, "ttsprk", 1)
	b := shard(t, "puwmod", 1)
	out := filepath.Join(t.TempDir(), "merged.csv")
	res := clitest.Exec(t, "-o", out, a, b)
	if res.Code != 0 {
		t.Fatalf("exit %d, stderr: %s", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stderr, "merged 2 shards") {
		t.Fatalf("stderr missing merge summary:\n%s", res.Stderr)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("merged CSV not written: %v", err)
	}

	res = clitest.Exec(t)
	if res.Code != 2 || !strings.Contains(res.Stderr, "usage:") {
		t.Fatalf("no args: exit %d, stderr %q", res.Code, res.Stderr)
	}

	res = clitest.Exec(t, "/nonexistent-shard.csv")
	if res.Code != 1 || !strings.Contains(res.Stderr, "lockstep-merge:") {
		t.Fatalf("bad shard: exit %d, stderr %q", res.Code, res.Stderr)
	}
}
