package main

import (
	"os"
	"path/filepath"
	"testing"

	"lockstep/internal/inject"
)

func shard(t *testing.T, kernel string, seed int64) string {
	t.Helper()
	ds, err := inject.Run(inject.Config{
		Kernels:               []string{kernel},
		RunCycles:             5000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            64,
		Seed:                  seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), kernel+".csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMergeDisjointShards(t *testing.T) {
	a := shard(t, "ttsprk", 1)
	b := shard(t, "puwmod", 1)
	merged, st, err := merge([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if st.duplicates != 0 {
		t.Fatalf("%d duplicates in disjoint shards", st.duplicates)
	}
	kernels := map[string]bool{}
	for _, r := range merged.Records {
		kernels[r.Kernel] = true
	}
	if !kernels["ttsprk"] || !kernels["puwmod"] {
		t.Fatal("merged dataset missing a shard's kernel")
	}
}

func TestMergeDropsExactDuplicates(t *testing.T) {
	a := shard(t, "rspeed", 3)
	merged, st, err := merge([]string{a, a})
	if err != nil {
		t.Fatal(err)
	}
	if st.duplicates != merged.Len() {
		t.Fatalf("duplicates %d, want %d", st.duplicates, merged.Len())
	}
}

func TestMergeRejectsConflicts(t *testing.T) {
	a := shard(t, "rspeed", 3)
	// Corrupt a copy: flip one record's detection flag.
	data, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	lines := string(data)
	// Find a ",true," and make it ",false," on exactly one line (the
	// detected column is the 7th field).
	b := filepath.Join(t.TempDir(), "conflict.csv")
	changed := false
	out := ""
	for _, line := range splitLines(lines) {
		if !changed && contains(line, ",true,") {
			line = replaceFirst(line, ",true,", ",false,")
			changed = true
		}
		out += line + "\n"
	}
	if !changed {
		t.Skip("no detected record to corrupt")
	}
	if err := os.WriteFile(b, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := merge([]string{a, b}); err == nil {
		t.Fatal("conflicting shards accepted")
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func replaceFirst(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}
