// Command lockstep-train builds the static error-correlation prediction
// table (Figure 10 of the paper) from a campaign log produced by
// lockstep-inject, reports its geometry (distinct diverged-SC sets, PTAR
// width, table bytes) and accuracy on a held-out split, and optionally
// dumps the table contents.
//
// Usage:
//
//	lockstep-train -data campaign.csv [-gran 7|13] [-topk N]
//	               [-train-frac 0.8] [-seed N] [-dump N]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"lockstep/internal/core"
	"lockstep/internal/dataset"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "campaign CSV from lockstep-inject (required)")
		granFlag  = flag.Int("gran", 7, "CPU unit granularity: 7 (coarse) or 13 (fine)")
		topK      = flag.Int("topk", 0, "units stored per entry (0 = all)")
		trainFrac = flag.Float64("train-frac", 0.8, "training fraction of the split")
		seed      = flag.Int64("seed", 1, "split seed")
		dump      = flag.Int("dump", 0, "dump the N most-populated table entries")
		outImage  = flag.String("o", "", "write the binary prediction-table image (the ROM the ECU flashes)")
	)
	flag.Parse()

	if err := run(os.Stdout, *dataPath, *granFlag, *topK, *trainFrac, *seed, *dump, *outImage); err != nil {
		fmt.Fprintln(os.Stderr, "lockstep-train:", err)
		os.Exit(1)
	}
}

// run trains the table and prints the geometry/accuracy report to w.
func run(w io.Writer, dataPath string, granFlag, topK int, trainFrac float64, seed int64, dump int, outImage string) error {
	if dataPath == "" {
		return fmt.Errorf("-data is required")
	}
	var gran core.Granularity
	switch granFlag {
	case 7:
		gran = core.Coarse7
	case 13:
		gran = core.Fine13
	default:
		return fmt.Errorf("-gran must be 7 or 13")
	}

	f, err := os.Open(dataPath)
	if err != nil {
		return err
	}
	ds, err := dataset.ReadCSV(f)
	f.Close()
	if err != nil {
		return err
	}

	// The shared training entrypoint: lockstep-serve's server-side
	// training calls the same function, so a table trained online from
	// this dataset is byte-identical to this CLI's output.
	rng := rand.New(rand.NewSource(seed))
	table, train, test := core.TrainSplit(ds, rng, gran, topK, trainFrac)

	fmt.Fprintf(w, "trained %v\n", table)
	fmt.Fprintf(w, "  training records: %d (%d detected)\n", train.Len(), train.Manifested().Len())
	fmt.Fprintf(w, "  table: %d entries + default, %d bits each at top-%d, %d bytes total\n",
		table.Dict.Len(), tableEntryBits(table), effectiveK(table), (table.TableBits()+7)/8)

	balanced := test.Balanced(rng)
	soft, hard, overall := table.TypeAccuracy(balanced)
	fmt.Fprintf(w, "  held-out type accuracy (balanced): soft %.1f%%, hard %.1f%%, overall %.1f%%\n",
		100*soft, 100*hard, 100*overall)
	for _, k := range []int{1, 2, 3, effectiveK(table)} {
		fmt.Fprintf(w, "  held-out location accuracy (top-%d): %.1f%%\n",
			k, 100*table.LocationAccuracy(balanced, k))
	}

	if outImage != "" {
		f, err := os.Create(outImage)
		if err != nil {
			return err
		}
		n, err := table.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote table image: %s (%d bytes)\n", outImage, n)
	}

	if dump > 0 {
		ids := table.SortedSetsByCount()
		if len(ids) > dump {
			ids = ids[:dump]
		}
		fmt.Fprintln(w, "  most-populated entries:")
		for _, id := range ids {
			e := table.Entries[id]
			fmt.Fprintf(w, "    PTAR %4d  DSR %016x  n=%-5d type=%s  order=%s\n",
				id, table.Dict.Set(id), e.Count, typeName(e.HardBit), orderNames(gran, e.Order))
		}
	}
	return nil
}

func effectiveK(t *core.Table) int {
	if t.TopK > 0 && t.TopK < t.Gran.Units() {
		return t.TopK
	}
	return t.Gran.Units()
}

func tableEntryBits(t *core.Table) int {
	return t.TableBits() / (t.Dict.Len() + 1)
}

func typeName(hard bool) string {
	if hard {
		return "hard"
	}
	return "soft"
}

func orderNames(gran core.Granularity, order []uint8) string {
	s := ""
	for i, u := range order {
		if i > 0 {
			s += ">"
		}
		s += gran.UnitName(int(u))
	}
	return s
}
