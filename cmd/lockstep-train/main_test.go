package main

import (
	"os"
	"path/filepath"
	"testing"

	"lockstep/internal/inject"
)

func campaignFile(t *testing.T) string {
	t.Helper()
	ds, err := inject.Run(inject.Config{
		Kernels:               []string{"ttsprk"},
		RunCycles:             6000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            8,
		Seed:                  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrainCLI(t *testing.T) {
	path := campaignFile(t)
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	for _, gran := range []int{7, 13} {
		if err := run(path, gran, 0, 0.8, 1, 5, ""); err != nil {
			t.Fatalf("gran %d: %v", gran, err)
		}
	}
	if err := run(path, 7, 3, 0.8, 1, 0, filepath.Join(t.TempDir(), "table.bin")); err != nil {
		t.Fatalf("top-3: %v", err)
	}
}

func TestTrainCLIRejectsBadInputs(t *testing.T) {
	if err := run("", 7, 0, 0.8, 1, 0, ""); err == nil {
		t.Fatal("missing -data accepted")
	}
	if err := run("/nonexistent.csv", 7, 0, 0.8, 1, 0, ""); err == nil {
		t.Fatal("missing file accepted")
	}
	path := campaignFile(t)
	if err := run(path, 9, 0, 0.8, 1, 0, ""); err == nil {
		t.Fatal("bad granularity accepted")
	}
}
