package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lockstep/internal/clitest"
	"lockstep/internal/inject"
)

func init() { clitest.Register(main) }

func TestMain(m *testing.M) { clitest.Dispatch(m) }

func campaignFile(t *testing.T) string {
	t.Helper()
	ds, err := inject.Run(inject.Config{
		Kernels:               []string{"ttsprk"},
		RunCycles:             6000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            8,
		Seed:                  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrainCLI(t *testing.T) {
	path := campaignFile(t)
	for _, gran := range []int{7, 13} {
		var out bytes.Buffer
		if err := run(&out, path, gran, 0, 0.8, 1, 5, ""); err != nil {
			t.Fatalf("gran %d: %v", gran, err)
		}
		for _, want := range []string{"trained", "held-out type accuracy", "most-populated entries"} {
			if !strings.Contains(out.String(), want) {
				t.Fatalf("gran %d: report missing %q:\n%s", gran, want, out.String())
			}
		}
	}
	var out bytes.Buffer
	img := filepath.Join(t.TempDir(), "table.bin")
	if err := run(&out, path, 7, 3, 0.8, 1, 0, img); err != nil {
		t.Fatalf("top-3: %v", err)
	}
	if !strings.Contains(out.String(), "wrote table image") {
		t.Fatalf("no table image confirmation:\n%s", out.String())
	}
	if fi, err := os.Stat(img); err != nil || fi.Size() == 0 {
		t.Fatalf("table image not written: %v", err)
	}
}

func TestTrainCLIRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "", 7, 0, 0.8, 1, 0, ""); err == nil {
		t.Fatal("missing -data accepted")
	}
	if err := run(&out, "/nonexistent.csv", 7, 0, 0.8, 1, 0, ""); err == nil {
		t.Fatal("missing file accepted")
	}
	path := campaignFile(t)
	if err := run(&out, path, 9, 0, 0.8, 1, 0, ""); err == nil {
		t.Fatal("bad granularity accepted")
	}
}

// TestCLIExitStatus runs the real binary: a training run exits 0 with
// the report on stdout; missing -data exits 1 with the error prefix.
func TestCLIExitStatus(t *testing.T) {
	path := campaignFile(t)
	res := clitest.Exec(t, "-data", path, "-gran", "7")
	if res.Code != 0 {
		t.Fatalf("exit %d, stderr: %s", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stdout, "trained") {
		t.Fatalf("stdout missing training report:\n%s", res.Stdout)
	}
	res = clitest.Exec(t)
	if res.Code != 1 || !strings.Contains(res.Stderr, "lockstep-train:") {
		t.Fatalf("missing -data: exit %d, stderr %q", res.Code, res.Stderr)
	}
}
