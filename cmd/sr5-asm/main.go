// Command sr5-asm assembles SR32 assembly into a word-hex listing or a
// little-endian binary image.
//
// Usage:
//
//	sr5-asm [-o out.bin] [-format hex|bin|list] prog.s
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"lockstep/internal/asm"
	"lockstep/internal/isa"
)

func main() {
	var (
		out    = flag.String("o", "-", "output path (\"-\" for stdout)")
		format = flag.String("format", "list", "output format: hex, bin or list")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sr5-asm [-o out] [-format hex|bin|list] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sr5-asm:", err)
		os.Exit(1)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sr5-asm:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sr5-asm:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "bin":
		buf := make([]byte, 4)
		for _, word := range prog.Words {
			binary.LittleEndian.PutUint32(buf, word)
			if _, err := w.Write(buf); err != nil {
				fmt.Fprintln(os.Stderr, "sr5-asm:", err)
				os.Exit(1)
			}
		}
	case "hex":
		for _, word := range prog.Words {
			fmt.Fprintf(w, "%08x\n", word)
		}
	case "list":
		fmt.Fprintf(w, "; origin 0x%x, entry 0x%x, %d words\n",
			prog.Origin, prog.Entry, len(prog.Words))
		for i, word := range prog.Words {
			addr := prog.Origin + uint32(i*4)
			fmt.Fprintf(w, "%08x: %08x  %s\n", addr, word, isa.Disassemble(isa.Decode(word)))
		}
	default:
		fmt.Fprintf(os.Stderr, "sr5-asm: unknown format %q\n", *format)
		os.Exit(2)
	}
}
