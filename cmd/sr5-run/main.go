// Command sr5-run executes an SR32 assembly program on the functional
// simulator (default) or on the cycle-accurate pipelined SR5 model, then
// prints the architectural registers and peripheral actuator state.
//
// Usage:
//
//	sr5-run [-engine iss|cpu] [-max N] [-kernel name] [prog.s]
//
// Either a source file or -kernel (a built-in AutoBench-style workload) is
// required.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lockstep/internal/asm"
	"lockstep/internal/cpu"
	"lockstep/internal/iss"
	"lockstep/internal/mem"
	"lockstep/internal/workload"
)

func main() {
	var (
		engine = flag.String("engine", "iss", "execution engine: iss (functional) or cpu (cycle-accurate)")
		max    = flag.Int("max", 1_000_000, "max instructions (iss) or cycles (cpu)")
		kernel = flag.String("kernel", "", "run a built-in workload kernel instead of a source file")
		dump   = flag.Bool("dump", false, "dump the full pipeline state at the end (cpu engine)")
	)
	flag.Parse()
	if err := run(os.Stdout, *engine, *max, *kernel, *dump, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "sr5-run:", err)
		os.Exit(1)
	}
}

// run executes the program and prints the result report to w.
func run(w io.Writer, engine string, max int, kernel string, dump bool, args []string) error {
	var prog *asm.Program
	var err error
	switch {
	case kernel != "":
		k := workload.ByName(kernel)
		if k == nil {
			return fmt.Errorf("unknown kernel %q (try ttsprk, rspeed, matrix, ...)", kernel)
		}
		prog, err = k.Program()
	case len(args) == 1:
		var src []byte
		src, err = os.ReadFile(args[0])
		if err == nil {
			prog, err = asm.Assemble(string(src))
		}
	default:
		return fmt.Errorf("need a source file or -kernel")
	}
	if err != nil {
		return err
	}

	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		return err
	}

	var regs [16]uint32
	switch engine {
	case "iss":
		m := iss.New(sys, prog.Entry)
		n, err := m.Run(max)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "iss: %d instructions, halted=%v, pc=0x%x\n", n, m.Halted, m.PC)
		regs = m.Regs
	case "cpu":
		c := cpu.New(sys, prog.Entry)
		n := c.Run(max)
		fmt.Fprintf(w, "cpu: %d cycles, %d instructions retired, halted=%v",
			n, c.State.RetCnt, c.State.Halted)
		if c.State.Trapped() {
			fmt.Fprintf(w, ", TRAP cause=%d epc=0x%x", c.State.ExcCause, c.State.EPC)
		}
		fmt.Fprintln(w)
		if dump {
			c.State.Dump(w)
		}
		regs = c.State.Regs
	default:
		return fmt.Errorf("unknown engine %q", engine)
	}

	for i := 0; i < 16; i += 4 {
		fmt.Fprintf(w, "  r%-2d=%08x r%-2d=%08x r%-2d=%08x r%-2d=%08x\n",
			i, regs[i], i+1, regs[i+1], i+2, regs[i+2], i+3, regs[i+3])
	}
	ext := sys.Ext()
	if ext.Writes > 0 {
		fmt.Fprintf(w, "peripheral: %d writes, %d reads; actuator slots:\n", ext.Writes, ext.Reads)
		for i, v := range ext.Actuator {
			if v != 0 {
				fmt.Fprintf(w, "  [%2d] 0x%08x (%d)\n", i, v, v)
			}
		}
	}
	return nil
}
