package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lockstep/internal/clitest"
)

func init() { clitest.Register(main) }

func TestMain(m *testing.M) { clitest.Dispatch(m) }

func TestRunKernelBothEngines(t *testing.T) {
	for _, engine := range []string{"iss", "cpu"} {
		var out bytes.Buffer
		if err := run(&out, engine, 20000, "ttsprk", false, nil); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if !strings.Contains(out.String(), engine+":") {
			t.Fatalf("%s: report missing engine summary line:\n%s", engine, out.String())
		}
		if !strings.Contains(out.String(), "r0 =") {
			t.Fatalf("%s: report missing register dump:\n%s", engine, out.String())
		}
	}
}

func TestRunSourceFile(t *testing.T) {
	src := filepath.Join(t.TempDir(), "p.s")
	prog := "        li r1, 5\n        mul r2, r1, r1\n        halt\n"
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	var iss, cpu bytes.Buffer
	if err := run(&iss, "iss", 100, "", false, []string{src}); err != nil {
		t.Fatal(err)
	}
	if err := run(&cpu, "cpu", 1000, "", true, []string{src}); err != nil {
		t.Fatal(err)
	}
	// r2 = 5*5 = 25 = 0x19 on both engines.
	for name, out := range map[string]string{"iss": iss.String(), "cpu": cpu.String()} {
		if !strings.Contains(out, "=00000019") {
			t.Fatalf("%s: r2 != 25:\n%s", name, out)
		}
	}
	if !strings.Contains(cpu.String(), "halted=true") {
		t.Fatalf("cpu engine did not halt:\n%s", cpu.String())
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "iss", 100, "", false, nil); err == nil {
		t.Fatal("no input accepted")
	}
	if err := run(&out, "iss", 100, "nosuchkernel", false, nil); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if err := run(&out, "warp", 100, "ttsprk", false, nil); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if err := run(&out, "iss", 100, "", false, []string{"/nonexistent.s"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestCLIExitStatus exercises the real binary: exit 0 plus the summary
// line on success, exit 1 plus an error prefix on failure.
func TestCLIExitStatus(t *testing.T) {
	res := clitest.Exec(t, "-engine", "iss", "-kernel", "ttsprk", "-max", "20000")
	if res.Code != 0 {
		t.Fatalf("exit %d, stderr: %s", res.Code, res.Stderr)
	}
	if !strings.Contains(res.Stdout, "iss:") {
		t.Fatalf("stdout missing summary line:\n%s", res.Stdout)
	}
	res = clitest.Exec(t, "-kernel", "nosuchkernel")
	if res.Code != 1 {
		t.Fatalf("bad kernel: exit %d, want 1", res.Code)
	}
	if !strings.Contains(res.Stderr, "sr5-run:") {
		t.Fatalf("stderr missing error prefix:\n%s", res.Stderr)
	}
}
