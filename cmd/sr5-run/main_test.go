package main

import (
	"os"
	"path/filepath"
	"testing"
)

func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	t.Cleanup(func() { os.Stdout = old; null.Close() })
}

func TestRunKernelBothEngines(t *testing.T) {
	silenceStdout(t)
	for _, engine := range []string{"iss", "cpu"} {
		if err := run(engine, 20000, "ttsprk", nil); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
	}
}

func TestRunSourceFile(t *testing.T) {
	silenceStdout(t)
	src := filepath.Join(t.TempDir(), "p.s")
	prog := "        li r1, 5\n        mul r2, r1, r1\n        halt\n"
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("iss", 100, "", []string{src}); err != nil {
		t.Fatal(err)
	}
	if err := run("cpu", 1000, "", []string{src}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	silenceStdout(t)
	if err := run("iss", 100, "", nil); err == nil {
		t.Fatal("no input accepted")
	}
	if err := run("iss", 100, "nosuchkernel", nil); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if err := run("warp", 100, "ttsprk", nil); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if err := run("iss", 100, "", []string{"/nonexistent.s"}); err == nil {
		t.Fatal("missing file accepted")
	}
}
