// Command lockstep-experiments reproduces the paper's evaluation: it runs
// (or loads) a fault-injection campaign and regenerates every data-bearing
// table and figure, printing measured values side by side with the paper's
// published numbers.
//
// Usage:
//
//	lockstep-experiments [-scale small|default|full] [-exp all|table1|...]
//	                     [-data campaign.csv] [-save campaign.csv]
//	                     [-html report.html] [-workers N] [-quiet]
//	                     [-checkpoint ck.lsc] [-checkpoint-every N] [-resume]
//	                     [-metrics snapshot.json] [-pprof addr]
//	                     [-legacy-inject] [-no-prune] [-mode dcls|slip:N|tmr]
//
// The campaign shards across -workers parallel executors (default: all
// CPUs). The dataset is bit-identical for every worker count, so -workers
// only changes wall-clock time; the throughput line reports it.
// -legacy-inject runs the campaign on the original dual-CPU simulation
// instead of golden-trace replay, and -no-prune disables the static
// fault-equivalence pruning of provably-masked sites — both produce the
// bit-identical dataset at lower throughput and are kept as the
// differential-testing oracles.
//
// -checkpoint makes the campaign phase crash-safe (an atomic resumable
// checkpoint every -checkpoint-every completed experiments); after an
// interruption, rerunning with -resume continues the campaign from the
// checkpoint and still reproduces the byte-identical dataset, then runs
// the selected experiments. -resume refuses on a corrupt checkpoint or
// when any schedule-relevant flag differs from the checkpointed campaign.
//
// Experiments: table1 units table2 table3 table4 fig4 fig5 fig11 fig12
// fig13 fig14 fig15 fig16 onoffchip lbist spread ablation window summary
// all.
// ("window" re-runs reduced campaigns at several checker stop-latency
// settings, so it takes noticeably longer than the others.) Figures
// 12/13 (and 15/16) share one computation and print together. -html
// additionally renders every table and figure into a self-contained HTML
// page with SVG charts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lockstep/internal/dataset"
	"lockstep/internal/experiments"
	"lockstep/internal/inject"
	"lockstep/internal/lockstep"
	"lockstep/internal/report"
	"lockstep/internal/sbist"
	"lockstep/internal/telemetry"

	"lockstep/internal/core"
)

// options carries every CLI knob of one invocation.
type options struct {
	scaleName  string
	expList    string
	dataPath   string
	savePath   string
	htmlPath   string
	metrics    string
	pprofAddr  string
	checkpoint string
	ckptEvery  int
	resume     bool
	workers    int
	legacy     bool
	noPrune    bool
	mode       string
	quiet      bool
}

func main() {
	var o options
	flag.StringVar(&o.scaleName, "scale", "default", "campaign scale: small, default or full")
	flag.StringVar(&o.expList, "exp", "all", "comma-separated experiments to run (see doc)")
	flag.StringVar(&o.dataPath, "data", "", "load campaign log from CSV instead of re-running")
	flag.StringVar(&o.savePath, "save", "", "save the campaign log to CSV")
	flag.StringVar(&o.htmlPath, "html", "", "also write a self-contained HTML report with SVG charts")
	flag.IntVar(&o.workers, "workers", 0, "parallel campaign workers (0 = all CPUs)")
	flag.BoolVar(&o.quiet, "quiet", false, "suppress progress output")
	flag.StringVar(&o.metrics, "metrics", "", "write the telemetry JSON snapshot to this path after the run")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	flag.BoolVar(&o.legacy, "legacy-inject", false, "use the legacy dual-CPU simulation instead of golden-trace replay (same dataset, ~2x slower)")
	flag.BoolVar(&o.noPrune, "no-prune", false, "disable static fault-equivalence pruning (same dataset, slower; the differential-oracle path)")
	flag.StringVar(&o.mode, "mode", "dcls", "lockstep mode the campaign runs under: dcls, slip:N or tmr")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "periodically write an atomic resumable campaign checkpoint to this path")
	flag.IntVar(&o.ckptEvery, "checkpoint-every", 0, "completed experiments between checkpoint writes (0 = default 4096)")
	flag.BoolVar(&o.resume, "resume", false, "resume the campaign from -checkpoint; refuses on a corrupt checkpoint or config mismatch")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "lockstep-experiments:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	quiet := o.quiet
	if o.pprofAddr != "" {
		url, err := telemetry.ServeDebug(o.pprofAddr)
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "debug server: %s/debug/pprof/ (metrics at /debug/vars)\n", url)
		}
	}
	scale, err := experiments.ScaleByName(o.scaleName)
	if err != nil {
		return err
	}
	if o.workers > 0 {
		scale = scale.WithWorkers(o.workers)
	}
	scale.Legacy = o.legacy
	scale.NoPrune = o.noPrune
	if scale.Mode, err = lockstep.ParseMode(o.mode); err != nil {
		return err
	}
	scale.Checkpoint = o.checkpoint
	scale.CheckpointEvery = o.ckptEvery
	scale.Resume = o.resume

	var ctx *experiments.Context
	if o.dataPath != "" {
		f, err := os.Open(o.dataPath)
		if err != nil {
			return err
		}
		ds, err := dataset.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		ctx, err = experiments.NewContextFromData(scale, ds)
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("loaded %d experiments from %s\n", ds.Len(), o.dataPath)
		}
	} else {
		progress := func(done, total int) {
			if quiet {
				return
			}
			if done%5000 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rcampaign: %d/%d experiments", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		if !quiet {
			total, err := scale.Config().Total()
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "running %s campaign (%d experiments)...\n",
				scale.Name, total)
		}
		var st inject.Stats
		ctx, st, err = experiments.NewContextStats(scale, progress)
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "campaign throughput: %s\n", st)
		}
	}

	if o.savePath != "" {
		f, err := os.Create(o.savePath)
		if err != nil {
			return err
		}
		if err := ctx.DS.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("saved campaign log to %s\n", o.savePath)
		}
	}

	if o.htmlPath != "" {
		f, err := os.Create(o.htmlPath)
		if err != nil {
			return err
		}
		if err := report.Generate(f, ctx); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("wrote HTML report to %s\n", o.htmlPath)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(o.expList, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	sel := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}
	ran := false
	out := os.Stdout

	if sel("summary") {
		experiments.PrintSummary(out, ctx.Summary())
		ran = true
	}
	if sel("table1") {
		ctx.Table1().Print(out)
		ran = true
	}
	if sel("units") {
		ctx.Units(core.Coarse7).Print(out)
		ctx.Units(core.Fine13).Print(out)
		ran = true
	}
	if sel("table2") {
		ctx.Table2().Print(out)
		ran = true
	}
	if sel("table3") {
		ctx.Table3().Print(out)
		ran = true
	}
	if sel("table4") {
		experiments.PrintTable4(out, ctx.Table4())
		ran = true
	}
	if sel("fig4") {
		ctx.FigUnitBC(true).Print(out)
		ran = true
	}
	if sel("fig5") {
		ctx.FigUnitBC(false).Print(out)
		ran = true
	}
	if sel("fig11") {
		ctx.Compare(core.Coarse7, sbist.OnChipTableAccess).Print(out)
		ran = true
	}
	if sel("onoffchip") {
		ctx.OnOffChipAnalysis().Print(out)
		ran = true
	}
	if sel("fig12", "fig13") {
		ctx.SweepTopK(core.Coarse7).Print(out)
		ran = true
	}
	if sel("fig14") {
		ctx.Compare(core.Fine13, sbist.OnChipTableAccess).Print(out)
		ran = true
	}
	if sel("fig15", "fig16") {
		ctx.SweepTopK(core.Fine13).Print(out)
		ran = true
	}
	if sel("lbist") {
		ctx.CompareLBIST(core.Coarse7, sbist.OffChipTableAccess).Print(out)
		ran = true
	}
	if sel("spread") {
		ctx.SpreadAnalysis().Print(out)
		ran = true
	}
	if sel("ablation") {
		ctx.AblationDynamic().Print(out)
		ran = true
	}
	if sel("window") {
		sw, err := ctx.SweepStopWindow(nil)
		if err != nil {
			return err
		}
		sw.Print(out)
		ran = true
	}
	if !ran {
		return fmt.Errorf("no known experiment in %q", o.expList)
	}
	if o.metrics != "" {
		if err := writeMetrics(o.metrics); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("wrote telemetry snapshot to %s\n", o.metrics)
		}
	}
	return nil
}

// writeMetrics dumps the default telemetry registry as indented JSON.
func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.Default.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
