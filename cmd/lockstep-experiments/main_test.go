package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lockstep/internal/experiments"
	"lockstep/internal/inject"
	"lockstep/internal/telemetry"
)

// writeSmallCampaign saves a tiny campaign log for CLI tests.
func writeSmallCampaign(t *testing.T) string {
	t.Helper()
	cfg := experiments.Small.Config()
	cfg.FlopStride = 24
	ds, err := inject.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "campaign.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFromDataAllExperiments(t *testing.T) {
	path := writeSmallCampaign(t)
	// Redirect stdout noise away from the test log.
	old := os.Stdout
	devnull, _ := os.Open(os.DevNull)
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close(); devnull.Close() }()

	if err := run(options{scaleName: "small", expList: "all", dataPath: path, quiet: true}); err != nil {
		t.Fatalf("run all: %v", err)
	}
	if err := run(options{scaleName: "small", expList: "table1,fig12", dataPath: path, quiet: true}); err != nil {
		t.Fatalf("run subset: %v", err)
	}
}

func TestRunSaveRoundTrip(t *testing.T) {
	path := writeSmallCampaign(t)
	save := filepath.Join(t.TempDir(), "resave.csv")
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	if err := run(options{scaleName: "small", expList: "table2", dataPath: path, savePath: save, quiet: true}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(save)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("resaved campaign differs from the loaded one")
	}
}

func TestRunWritesHTMLReport(t *testing.T) {
	path := writeSmallCampaign(t)
	html := filepath.Join(t.TempDir(), "report.html")
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	if err := run(options{scaleName: "small", expList: "table1", dataPath: path, htmlPath: html, quiet: true}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(html)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 10_000 || !strings.Contains(string(data), "<svg") {
		t.Fatalf("HTML report implausible: %d bytes", len(data))
	}
}

// TestRunWritesMetricsSnapshot: -metrics dumps a valid telemetry JSON
// snapshot carrying the campaign's outcome counters.
func TestRunWritesMetricsSnapshot(t *testing.T) {
	path := writeSmallCampaign(t)
	snapPath := filepath.Join(t.TempDir(), "snap.json")
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	if err := run(options{scaleName: "small", expList: "table1", dataPath: path, metrics: snapPath, quiet: true}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	// writeSmallCampaign ran a campaign in this process, so the default
	// registry must hold its outcome counters.
	found := false
	for _, c := range snap.Counters {
		if c.Name == "inject.outcomes" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("snapshot missing inject.outcomes counters")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(options{scaleName: "bogus-scale", expList: "all", quiet: true}); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run(options{scaleName: "small", expList: "all", dataPath: "/nonexistent/campaign.csv", quiet: true}); err == nil {
		t.Fatal("missing data file accepted")
	}
	path := writeSmallCampaign(t)
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()
	if err := run(options{scaleName: "small", expList: "nosuchexperiment", dataPath: path, quiet: true}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
