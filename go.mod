module lockstep

go 1.22
