// Live error-handler episodes: the complete Figure 9c flow on a running
// dual-CPU lockstep system, with cycle-stamped reaction timelines.
//
// Two episodes are played out on a live DMR pair running the CAN kernel:
//
//  1. a transient flip — detected, predicted, handled by reset & restart,
//     after which the pair provably resumes lockstep;
//  2. a stuck-at fault — detected, diagnosed by STLs in the predicted
//     order, and confirmed as a permanent failure (fail-safe state).
//
// Run with: go run ./examples/error-handler
package main

import (
	"fmt"
	"log"
	"os"

	"lockstep/internal/core"
	"lockstep/internal/cpu"
	"lockstep/internal/handler"
	"lockstep/internal/inject"
	"lockstep/internal/lockstep"
	"lockstep/internal/sbist"
	"lockstep/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const kernel = "canrdr"

	// Design time: train the predictor and build the handler.
	fmt.Println("=== design time: training the prediction table ===")
	ds, err := inject.Run(inject.Config{
		Kernels:               []string{kernel},
		RunCycles:             8000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            3,
		Seed:                  5,
	})
	if err != nil {
		return err
	}
	table := core.Train(ds, core.Coarse7, 0)
	fmt.Printf("  %v from %d experiments\n\n", table, ds.Len())

	k := workload.ByName(kernel)
	tm, err := k.MeasureTiming(200000)
	if err != nil {
		return err
	}
	cfg := sbist.NewConfig(core.Coarse7,
		map[string]int64{kernel: int64(tm.RestartCycles)}, sbist.OffChipTableAccess)
	h := handler.New(table, cfg)

	// Runtime: the live lockstep system.
	dmr, err := lockstep.NewDMR(k)
	if err != nil {
		return err
	}

	// --- episode 1: transient ---
	// Candidate flops in the DPU datapath; the first one whose transient
	// actually reaches the outputs gets handled.
	fmt.Println("=== episode 1: transient flip in the data processing unit ===")
	handled := false
	for bit := uint8(0); bit < 20 && !handled; bit += 2 {
		flop := findFlop("XMAlu", bit)
		dmr.Arm(lockstep.Injection{Flop: flop, Kind: lockstep.SoftFlip,
			Cycle: dmr.Cycle + 500})
		_, detect, ok := dmr.RunToError(4000)
		dmr.Disarm()
		if !ok {
			continue
		}
		handled = true
		fmt.Printf("  transient in %s detected at cycle %d; handler invoked:\n",
			cpu.FlopName(flop), detect)
		re, err := h.HandleLive(dmr, kernel, int(cpu.FlopUnit(flop)), false)
		if err != nil {
			return err
		}
		re.PrintTimeline(os.Stdout)
		// Prove the restart worked: the pair runs divergence-free.
		clean := 0
		for ; clean < 10000; clean++ {
			if dmr.Step() {
				return fmt.Errorf("divergence after recovery")
			}
		}
		fmt.Printf("  %d clean cycles after restart: availability preserved\n\n", clean)
	}
	if !handled {
		fmt.Println("  all sampled transients were masked; no reaction needed")
	}

	// --- episode 2: permanent fault ---
	// Pick a stuck-at whose live signature hits a trained table entry, so
	// the episode shows the predictor at its best; fall back to the last
	// detected one (default entry) otherwise.
	fmt.Println("=== episode 2: stuck-at-1 in the load/store unit ===")
	var lastRe *handler.Reaction
	for bit := uint8(2); bit < 16; bit++ {
		flop := findFlop("LSUAddr", bit)
		trial, err := lockstep.NewDMR(k)
		if err != nil {
			return err
		}
		trial.Arm(lockstep.Injection{Flop: flop, Kind: lockstep.Stuck1, Cycle: 1500})
		dsr, detect, ok := trial.RunToError(30000)
		if !ok {
			continue
		}
		re, err := h.HandleLive(trial, kernel, int(cpu.FlopUnit(flop)), true)
		if err != nil {
			return err
		}
		if !re.KnownSet && lastRe == nil {
			lastRe = &re
			continue // prefer a trained signature
		}
		fmt.Printf("  stuck-at in %s detected at cycle %d (DSR %#x); handler invoked:\n",
			cpu.FlopName(flop), detect, dsr)
		re.PrintTimeline(os.Stdout)
		fmt.Printf("  permanent fault confirmed in %s — system held in fail-safe state\n",
			core.Coarse7.UnitName(re.FaultyUnit))
		return nil
	}
	if lastRe != nil {
		fmt.Println("  (no trained signature matched; default-entry diagnosis shown)")
		lastRe.PrintTimeline(os.Stdout)
		return nil
	}
	return fmt.Errorf("no stuck-at manifested; unexpected")
}

func findFlop(reg string, bit uint8) int {
	for i := 0; i < cpu.NumFlops(); i++ {
		f := cpu.FlopAt(i)
		if cpu.Registry()[f.Reg].Name == reg && f.Bit == bit {
			return i
		}
	}
	panic("flop not found: " + reg)
}
