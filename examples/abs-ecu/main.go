// ABS ECU scenario: error reaction time in a safety-critical wheel-speed
// channel.
//
// An anti-lock-braking ECU runs the road-speed kernel on a dual-CPU
// lockstep SR5 (ASIL-D style, Section I of the paper). The error reaction
// budget is statically provisioned for the worst case — running every
// unit's software test library — and any runtime reduction adds directly
// to system availability.
//
// This example trains the error-correlation predictor on two *other*
// kernels (tooth-to-spark and PWM), then subjects the wheel-speed channel
// to a mixed batch of transient and permanent faults and compares the
// reaction time of the worst-case baseline flow against the
// prediction-driven flow — including cross-workload generalisation of the
// trained table.
//
// Run with: go run ./examples/abs-ecu
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lockstep/internal/avail"
	"lockstep/internal/core"
	"lockstep/internal/cpu"
	"lockstep/internal/dataset"
	"lockstep/internal/inject"
	"lockstep/internal/lockstep"
	"lockstep/internal/sbist"
	"lockstep/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Train on other workloads — the ECU's predictor table is built at
	//    design time, not on the deployed application.
	fmt.Println("=== training the predictor on ttsprk + puwmod ===")
	trainDS, err := inject.Run(inject.Config{
		Kernels:               []string{"ttsprk", "puwmod"},
		RunCycles:             8000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            4,
		Seed:                  11,
	})
	if err != nil {
		return err
	}
	table := core.Train(trainDS, core.Coarse7, 4) // paper's sweet spot: top-4 units
	fmt.Printf("  %v (top-%d entries)\n\n", table, 4)

	// 2. The deployed channel: rspeed on the lockstep pair.
	k := workload.ByName("rspeed")
	golden, err := lockstep.NewGolden(k, 10000, 1250)
	if err != nil {
		return err
	}
	tm, err := k.MeasureTiming(200000)
	if err != nil {
		return err
	}
	fmt.Printf("=== wheel-speed channel: %s (restart penalty %d cycles) ===\n\n",
		k.Name, tm.RestartCycles)

	cfg := sbist.NewConfig(core.Coarse7,
		map[string]int64{k.Name: int64(tm.RestartCycles)}, sbist.OffChipTableAccess)
	baseline := sbist.NewBaseAscending(cfg)
	predictor := sbist.PredComb{Cfg: cfg, Table: table}

	// The statically provisioned reaction budget: every STL plus restart.
	var budget int64 = sbist.OffChipTableAccess + int64(tm.RestartCycles)
	for _, l := range cfg.STL {
		budget += l
	}
	fmt.Printf("provisioned worst-case reaction budget: %d cycles\n\n", budget)

	// 3. A service life of faults: random flops, mixed kinds.
	rng := rand.New(rand.NewSource(2026))
	var detected []dataset.Record
	for len(detected) < 12 {
		flop := rng.Intn(cpu.NumFlops())
		kind := lockstep.FaultKind(rng.Intn(lockstep.NumFaultKinds))
		cycle := 1000 + rng.Intn(8000)
		out := golden.Inject(lockstep.Injection{Flop: flop, Kind: kind, Cycle: cycle})
		if !out.Detected {
			continue
		}
		detected = append(detected, dataset.Record{
			Kernel: k.Name, Flop: flop,
			Unit: cpu.FlopUnit(flop), Fine: cpu.FlopFine(flop),
			Kind: kind, InjectCycle: cycle, Detected: true,
			DetectCycle: out.DetectCycle, DSR: out.DSR,
		})
	}

	fmt.Println("error  fault                       truth  base-ascending   pred-comb     saved")
	var baseSum, predSum, savedVsBudget int64
	for i, rec := range detected {
		b := baseline.React(rec, rng)
		p := predictor.React(rec, rng)
		baseSum += b.Cycles
		predSum += p.Cycles
		savedVsBudget += budget - p.Cycles
		fmt.Printf("  #%-2d  %-26s %-5s  %9d cyc   %9d cyc  %6.1f%%\n",
			i+1, fmt.Sprintf("%s in %s", rec.Kind, cpu.FlopName(rec.Flop)),
			truth(rec), b.Cycles, p.Cycles,
			100*(1-float64(p.Cycles)/float64(b.Cycles)))
	}
	n := int64(len(detected))
	fmt.Printf("\nmean reaction time: baseline %d cyc, predictor %d cyc (%.1f%% faster)\n",
		baseSum/n, predSum/n, 100*(1-float64(predSum)/float64(baseSum)))
	fmt.Printf("runtime margin recovered vs provisioned budget: %d cycles/error on average\n",
		savedVsBudget/n)

	// Fleet-level availability: a 400 MHz ECU with a 1000-FIT detected
	// lockstep error rate.
	profile := avail.FromFIT(1000, 400e6)
	imp := profile.Compare(float64(baseSum/n), float64(predSum/n))
	fmt.Printf("\nat 1000 FIT on a 400 MHz ECU: %v\n", imp)
	fmt.Printf("availability: baseline %.12f -> predictor %.12f\n",
		profile.Availability(float64(baseSum/n)),
		profile.Availability(float64(predSum/n)))
	fmt.Println("\nEvery recovered cycle is slack before the ABS hard deadline — the")
	fmt.Println("availability increase the paper quantifies at 42-65%.")
	return nil
}

func truth(r dataset.Record) string {
	if r.Hard() {
		return "hard"
	}
	return "soft"
}
