// Quickstart: the whole error-correlation-prediction story on one page.
//
// It builds a dual-CPU lockstep SR5 running an automotive kernel, trains a
// small static predictor from a quick fault-injection campaign, then
// injects a stuck-at fault, catches the divergence with the lockstep
// checker, latches the Divergence Status Register into the predictor
// front-end, and lets the prediction drive the SBIST diagnosis order —
// comparing its reaction time against the static baseline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lockstep/internal/core"
	"lockstep/internal/cpu"
	"lockstep/internal/dataset"
	"lockstep/internal/inject"
	"lockstep/internal/lockstep"
	"lockstep/internal/sbist"
	"lockstep/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Train the static predictor from a quick campaign on one kernel
	//    (the paper's Figure 7 flow, at toy scale).
	fmt.Println("=== 1. training campaign (ttsprk, every 12th flop) ===")
	ds, err := inject.Run(inject.Config{
		Kernels:               []string{"ttsprk"},
		RunCycles:             8000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            12,
		Seed:                  42,
	})
	if err != nil {
		return err
	}
	man := ds.Manifested()
	fmt.Printf("  %d experiments, %d manifested errors, %d distinct diverged SC sets\n",
		ds.Len(), man.Len(), ds.DistinctDSRs())

	// Split into train and test by random sampling (the paper's Figure 7)
	// and train the prediction table on the training half.
	rng := rand.New(rand.NewSource(7))
	train, test := ds.Split(rng, 0.8)
	table := core.Train(train, core.Coarse7, 0)
	fmt.Printf("  trained on %d records: %v\n\n", train.Len(), table)

	// 2. Replay one held-out error on the live lockstep pair: inject the
	//    same fault the test log describes and let the checker catch it.
	fmt.Println("=== 2. lockstep run with a held-out stuck-at fault ===")
	k := workload.ByName("ttsprk")
	golden, err := lockstep.NewGolden(k, 8000, 1000)
	if err != nil {
		return err
	}
	rec, ok := pickTestError(test, table)
	if !ok {
		return fmt.Errorf("no suitable held-out error; increase campaign size")
	}
	inj := lockstep.Injection{Flop: rec.Flop, Kind: rec.Kind, Cycle: rec.InjectCycle}
	out := golden.Inject(inj)
	if !out.Detected {
		return fmt.Errorf("fault unexpectedly masked")
	}
	flop := rec.Flop
	fmt.Printf("  injected %v at %s (unit %v), cycle %d\n",
		inj.Kind, cpu.FlopName(flop), rec.Unit, inj.Cycle)
	fmt.Printf("  checker detected divergence at cycle %d (manifestation %d cycles)\n",
		out.DetectCycle, out.ManifestationCycles(inj))
	fmt.Printf("  diverged SCs:%s\n\n", scNames(out.DSR))
	rec.DSR = out.DSR
	rec.DetectCycle = out.DetectCycle

	// 3. The predictor front-end (Figure 6 red box) resolves the DSR and
	//    the error handler reads the prediction.
	fmt.Println("=== 3. error correlation prediction ===")
	fe := core.Frontend{Table: table}
	fe.LatchError(out.DSR)
	pred := fe.ReadEntry()
	fmt.Printf("  DSR=%#x -> PTAR=%d (trained entry: %v)\n", fe.DSR, fe.PTAR, fe.Hit)
	fmt.Printf("  predicted type: %s   predicted unit order:", typeName(pred.Hard))
	for _, u := range pred.Units {
		fmt.Printf(" %s", core.Coarse7.UnitName(int(u)))
	}
	fmt.Println()
	fmt.Println()

	// 4. Reaction-time comparison: baseline SBIST orders vs the
	//    prediction-driven order for this specific error.
	fmt.Println("=== 4. SBIST reaction time for this error ===")
	tm, err := k.MeasureTiming(200000)
	if err != nil {
		return err
	}
	cfg := sbist.NewConfig(core.Coarse7, map[string]int64{k.Name: int64(tm.RestartCycles)},
		sbist.OffChipTableAccess)
	models := []sbist.Model{
		sbist.BaseRandom{Cfg: cfg},
		sbist.NewBaseAscending(cfg),
		sbist.NewBaseManifest(cfg, train),
		sbist.PredLocationOnly{Cfg: cfg, Table: table},
		sbist.PredComb{Cfg: cfg, Table: table},
	}
	for _, m := range models {
		res := m.React(rec, rng)
		fmt.Printf("  %-20s LERT %8d cycles, %d units tested\n",
			m.Name(), res.Cycles, res.UnitsTested)
	}
	fmt.Println("\nThe prediction-driven diagnosis reaches the safe state first: that")
	fmt.Println("reaction-time reduction is the paper's availability gain.")
	return nil
}

// pickTestError selects a held-out hard error whose diverged-SC signature
// the trained table knows — the case where the predictor can help.
func pickTestError(test *dataset.Dataset, table *core.Table) (dataset.Record, bool) {
	for _, r := range test.Records {
		if !r.Detected || !r.Hard() {
			continue
		}
		if _, known := table.Dict.ID(r.DSR); !known {
			continue
		}
		p := table.Predict(r.DSR)
		if len(p.Units) > 0 && p.Units[0] == uint8(r.Unit) {
			return r, true
		}
	}
	return dataset.Record{}, false
}

func typeName(hard bool) string {
	if hard {
		return "hard (permanent)"
	}
	return "soft (transient)"
}

func scNames(dsr uint64) string {
	s := ""
	for i := 0; i < cpu.NumSC; i++ {
		if dsr>>uint(i)&1 != 0 {
			s += " " + cpu.SCName(i)
		}
	}
	return s
}
