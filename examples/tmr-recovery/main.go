// Triple-core lockstep (TMR) with forward recovery.
//
// Section II of the paper: in a multiple-modular-redundancy configuration
// the majority voter identifies the erring CPU. A transient error can be
// healed by forward recovery — save the majority's architectural state,
// reset all cores, resume — bringing the erring CPU back into lockstep
// (as in the TCLS Cortex-R5 system the authors cite). A permanent fault
// shows up again right after recovery, which is itself a diagnosis signal.
//
// This example demonstrates both: a transient fault that is recovered and
// never returns, and a stuck-at fault that keeps re-flagging the same CPU
// until the controller declares it failed.
//
// Run with: go run ./examples/tmr-recovery
package main

import (
	"fmt"
	"log"

	"lockstep/internal/cpu"
	"lockstep/internal/lockstep"
	"lockstep/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== TMR lockstep: canrdr on three SR5 cores ===")

	// --- episode 1: transient fault, forward recovery heals it ---
	fmt.Println("\n-- episode 1: transient (soft) fault in CPU 1 --")
	tmr, err := workloadTMR()
	if err != nil {
		return err
	}
	warmup(tmr, 2000)
	tmr.Arm(1, lockstep.Injection{Flop: flopOf("DXImm", 7), Kind: lockstep.SoftFlip,
		Cycle: tmr.Cycle + 1})
	v, cycles := runUntilDiverged(tmr, 20000)
	if v == nil {
		fmt.Println("  fault was architecturally masked — no recovery needed")
	} else {
		fmt.Printf("  voter flagged CPU %d after %d cycles (diverged SCs:%s)\n",
			v.Erring, cycles, scNames(v.DSR))
		pc := tmr.ForwardRecover(0)
		fmt.Printf("  forward recovery: majority state saved, all cores resume at pc=0x%x\n", pc)
		if v2, _ := runUntilDiverged(tmr, 20000); v2 != nil {
			return fmt.Errorf("unexpected divergence after soft-error recovery")
		}
		fmt.Println("  20000 cycles clean after recovery: error was transient, availability preserved")
	}

	// --- episode 2: permanent fault keeps coming back ---
	fmt.Println("\n-- episode 2: stuck-at fault in CPU 2 --")
	tmr, err = workloadTMR()
	if err != nil {
		return err
	}
	warmup(tmr, 2000)
	tmr.Arm(2, lockstep.Injection{Flop: flopOf("LSUAddr", 3), Kind: lockstep.Stuck1,
		Cycle: tmr.Cycle + 1})
	strikes := 0
	for attempt := 1; attempt <= 3; attempt++ {
		v, cycles := runUntilDiverged(tmr, 20000)
		if v == nil {
			fmt.Printf("  attempt %d: no divergence (fault dormant)\n", attempt)
			continue
		}
		strikes++
		fmt.Printf("  attempt %d: voter flagged CPU %d after %d cycles\n",
			attempt, v.Erring, cycles)
		pc := tmr.ForwardRecover(0)
		// Re-arm: a stuck-at survives the reset (it is silicon damage).
		tmr.Arm(2, lockstep.Injection{Flop: flopOf("LSUAddr", 3), Kind: lockstep.Stuck1,
			Cycle: tmr.Cycle + 1})
		fmt.Printf("    forward recovery to pc=0x%x — but the fault is in the silicon\n", pc)
	}
	if strikes >= 2 {
		fmt.Println("  repeated divergence from the same CPU: controller declares a PERMANENT")
		fmt.Println("  fault, takes CPU 2 out of the vote, and alerts the system (safe state).")
	}
	return nil
}

func workloadTMR() (*lockstep.TMR, error) {
	return lockstep.NewTMR(workload.ByName("canrdr"))
}

func warmup(t *lockstep.TMR, n int) {
	for i := 0; i < n; i++ {
		t.Step()
	}
}

func runUntilDiverged(t *lockstep.TMR, limit int) (*lockstep.VoteResult, int) {
	for i := 0; i < limit; i++ {
		v := t.Step()
		if v.Diverged {
			return &v, i
		}
	}
	return nil, limit
}

func flopOf(reg string, bit uint8) int {
	for i := 0; i < cpu.NumFlops(); i++ {
		f := cpu.FlopAt(i)
		if cpu.Registry()[f.Reg].Name == reg && f.Bit == bit {
			return i
		}
	}
	panic("flop not found: " + reg)
}

func scNames(dsr uint64) string {
	s := ""
	for i := 0; i < cpu.NumSC; i++ {
		if dsr>>uint(i)&1 != 0 {
			s += " " + cpu.SCName(i)
		}
	}
	return s
}
